"""Integration tests for the FLUTE sender/receiver sessions."""

import numpy as np
import pytest

from repro.channel import BernoulliChannel, GilbertChannel, PerfectChannel
from repro.flute import FluteReceiver, FluteSender, deliver_object
from repro.flute.sender import FDT_TOI


@pytest.fixture
def payload(rng):
    return bytes(rng.integers(0, 256, size=20_000, dtype=np.uint8))


class TestSender:
    def test_rejects_empty_object(self):
        with pytest.raises(ValueError):
            FluteSender(b"", symbol_size=64)

    def test_rejects_single_symbol_object(self):
        with pytest.raises(ValueError):
            FluteSender(b"tiny", symbol_size=1024)

    def test_packet_stream_structure(self, payload):
        sender = FluteSender(payload, symbol_size=512, code="ldgm-staircase",
                             expansion_ratio=2.0, tx_model="tx_model_1", seed=1)
        packets = list(sender.packets())
        assert packets[0].is_fdt
        data_packets = packets[1:]
        assert len(data_packets) == sender.code.n
        assert data_packets[-1].header.close_object
        assert all(len(p.payload) == 512 for p in data_packets)

    def test_nsent_truncates_stream(self, payload):
        sender = FluteSender(payload, symbol_size=512, expansion_ratio=2.0, seed=1)
        packets = list(sender.packets(nsent=10))
        assert len([p for p in packets if not p.is_fdt]) == 10

    def test_carousel_repeats_object(self, payload):
        sender = FluteSender(payload, symbol_size=512, expansion_ratio=1.5, seed=1)
        packets = list(sender.packets(carousel_cycles=2))
        fdt_count = sum(1 for p in packets if p.is_fdt)
        assert fdt_count == 2
        assert len(packets) == 2 * (sender.code.n + 1)

    def test_fdt_describes_the_object(self, payload):
        sender = FluteSender(payload, symbol_size=512, code="ldgm-triangle",
                             expansion_ratio=2.5, seed=3, content_location="data.bin")
        fdt = sender.fdt_instance()
        entry = fdt.get_file(sender.toi)
        assert entry.content_length == len(payload)
        assert entry.oti.code_name == "ldgm-triangle"
        assert entry.oti.k == sender.code.k

    def test_global_index_mapping_roundtrip(self, payload):
        sender = FluteSender(payload, symbol_size=512, code="rse", expansion_ratio=2.0, seed=1)
        for index in (0, 5, sender.code.k, sender.code.n - 1):
            packet = sender.data_packet(index)
            assert sender.global_index_of(packet.source_block_number, packet.encoding_symbol_id) == index

    def test_invalid_index_rejected(self, payload):
        sender = FluteSender(payload, symbol_size=512, expansion_ratio=1.5, seed=1)
        with pytest.raises(IndexError):
            sender.data_packet(sender.code.n)


class TestReceiver:
    @pytest.mark.parametrize("code", ["rse", "ldgm-staircase", "ldgm-triangle"])
    def test_lossless_roundtrip(self, payload, code):
        sender = FluteSender(payload, symbol_size=512, code=code, expansion_ratio=1.5,
                             tx_model="tx_model_1", seed=2)
        receiver = FluteReceiver()
        for packet in sender.packets():
            if receiver.feed(packet):
                break
        assert receiver.is_complete
        assert receiver.object_data() == payload
        assert receiver.inefficiency_ratio == pytest.approx(1.0)

    def test_roundtrip_through_serialised_packets(self, payload):
        sender = FluteSender(payload, symbol_size=512, code="ldgm-staircase",
                             expansion_ratio=2.0, tx_model="tx_model_4", seed=4)
        receiver = FluteReceiver()
        for packet in sender.packets():
            if receiver.feed_bytes(packet.to_bytes()):
                break
        assert receiver.is_complete and receiver.object_data() == payload

    def test_data_before_fdt_is_buffered(self, payload):
        sender = FluteSender(payload, symbol_size=512, expansion_ratio=1.5,
                             tx_model="tx_model_1", seed=5)
        packets = list(sender.packets())
        fdt, data = packets[0], packets[1:]
        receiver = FluteReceiver()
        # Deliver a good chunk of data packets before the FDT arrives.
        for packet in data[:20]:
            receiver.feed(packet)
        assert not receiver.is_complete
        receiver.feed(fdt)
        for packet in data[20:]:
            if receiver.feed(packet):
                break
        assert receiver.is_complete and receiver.object_data() == payload

    def test_other_sessions_ignored(self, payload):
        sender = FluteSender(payload, symbol_size=512, expansion_ratio=1.5, tsi=9, seed=6)
        receiver = FluteReceiver(tsi=1)
        for packet in list(sender.packets())[:10]:
            receiver.feed(packet)
        assert receiver.ignored_packets == 10
        assert receiver.packets_received == 0

    def test_object_data_before_completion_rejected(self):
        receiver = FluteReceiver()
        with pytest.raises(RuntimeError):
            receiver.object_data()

    def test_reception_with_losses(self, payload, rng):
        sender = FluteSender(payload, symbol_size=512, code="ldgm-staircase",
                             expansion_ratio=2.5, tx_model="tx_model_4", seed=7)
        channel = GilbertChannel(0.05, 0.5)
        receiver = FluteReceiver()
        packets = list(sender.packets())
        receiver.feed(packets[0])
        data_packets = packets[1:]
        loss = channel.loss_mask(len(data_packets), rng)
        for packet, lost in zip(data_packets, loss):
            if not lost and receiver.feed(packet):
                break
        assert receiver.is_complete
        assert receiver.object_data() == payload
        assert receiver.inefficiency_ratio < 1.6


class TestDeliverObject:
    def test_delivery_over_lossy_channel(self, payload):
        reports = deliver_object(
            payload,
            symbol_size=512,
            channel=BernoulliChannel(0.15),
            code="ldgm-staircase",
            expansion_ratio=2.0,
            tx_model="tx_model_4",
            seed=1,
            num_receivers=3,
        )
        assert len(reports) == 3
        for report in reports:
            assert report.complete and report.data_matches
            assert 1.0 <= report.inefficiency_ratio <= 2.0
            assert report.packets_received <= report.packets_sent

    def test_delivery_fails_on_terrible_channel(self, payload):
        reports = deliver_object(
            payload,
            symbol_size=512,
            channel=GilbertChannel(0.9, 0.05),
            code="ldgm-staircase",
            expansion_ratio=1.5,
            seed=1,
        )
        assert not reports[0].complete
        assert np.isnan(reports[0].inefficiency_ratio)

    def test_default_perfect_channel(self, payload):
        reports = deliver_object(payload, symbol_size=512, expansion_ratio=1.5,
                                 tx_model="tx_model_1", seed=1)
        assert reports[0].complete
        assert reports[0].loss_fraction == pytest.approx(0.0)

    def test_invalid_receiver_count_rejected(self, payload):
        with pytest.raises(ValueError):
            deliver_object(payload, num_receivers=0)
