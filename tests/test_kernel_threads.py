"""Tests for multi-threaded compiled kernels and the thread executor.

Covers the ``kernel_threads`` spec layer (:mod:`repro.kernels.threads`:
parsing, environment default, ``auto`` resolution against the executor's
worker divisor, the thread-local context), bit-identity of the OpenMP
row-parallel cext kernels at every team size (1 thread == N threads ==
the numpy reference, under both seed schemes), the shared-memory
:class:`~repro.runner.executors.ThreadExecutor` against the serial and
process executors, the ``kernel_threads`` plumbing through work units /
cache keys / CLI, and the graceful degradation path when the OpenMP
probe compile fails (poisoned ``CFLAGS``): one warning, serial kernels,
identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.core.sweep import simulate_grid
from repro.fastpath import simulate_batch_columnar
from repro.fec.registry import make_code
from repro.kernels import (
    THREADS_ENV_VAR,
    cext_compiler_available,
    cext_openmp_enabled,
    current_thread_count,
    get_backend,
    normalize_thread_spec,
    physical_cores,
    resolve_thread_count,
    thread_count_context,
    worker_divisor_context,
)
from repro.runner.cache import unit_key
from repro.runner.cli import main as cli_main
from repro.runner.executors import ProcessExecutor, ThreadExecutor, resolve_executor
from repro.runner.units import WorkUnit, execute_unit, plan_units
from repro.scheduling.registry import make_tx_model
from repro.seeds import get_scheme

needs_cext = pytest.mark.skipif(
    not cext_compiler_available(), reason="no C compiler for the cext backend"
)

SCHEMES = ["per-run", "unit"]


# ---------------------------------------------------------------------------
# Spec parsing and resolution.
# ---------------------------------------------------------------------------


class TestThreadSpec:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (None, None),
            ("", None),
            ("  ", None),
            ("auto", "auto"),
            ("AUTO", "auto"),
            (1, "1"),
            (4, "4"),
            ("4", "4"),
            (" 2 ", "2"),
        ],
    )
    def test_normalize(self, spec, expected):
        assert normalize_thread_spec(spec) == expected

    @pytest.mark.parametrize("spec", [0, -1, "0", "-3", "bogus", 1.5, "1.5"])
    def test_normalize_rejects(self, spec):
        with pytest.raises(ValueError, match="kernel_threads"):
            normalize_thread_spec(spec)

    def test_explicit_spec_wins(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "7")
        assert resolve_thread_count(3) == 3
        assert resolve_thread_count("5") == 5

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "6")
        assert resolve_thread_count() == 6
        monkeypatch.setenv(THREADS_ENV_VAR, "")
        assert resolve_thread_count() == resolve_thread_count("auto")

    def test_auto_divides_cores_by_worker_divisor(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV_VAR, raising=False)
        cores = physical_cores()
        assert resolve_thread_count("auto") == max(1, cores)
        with worker_divisor_context(2):
            assert resolve_thread_count("auto") == max(1, cores // 2)
        with worker_divisor_context(2 * cores):
            # Oversubscribed executor: kernels drop to one thread, never 0.
            assert resolve_thread_count("auto") == 1
        assert resolve_thread_count("auto") == max(1, cores)

    def test_context_carries_spec_to_call_site(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV_VAR, raising=False)
        with thread_count_context("3"):
            assert current_thread_count() == 3
            with thread_count_context(5):
                assert current_thread_count() == 5
            assert current_thread_count() == 3
        # None is a no-op frame: ambient resolution shows through.
        with thread_count_context(None):
            assert current_thread_count() == resolve_thread_count()

    def test_physical_cores_positive(self):
        assert physical_cores() >= 1


# ---------------------------------------------------------------------------
# Bit-identity of the threaded kernels.
# ---------------------------------------------------------------------------


def _batch_args(k: int = 120):
    code = make_code("ldgm-staircase", k=k, expansion_ratio=2.5, seed=3)
    return code, make_tx_model("tx_model_2"), GilbertChannel(0.08, 0.4)


def _streams(scheme: str, count: int, seed: int = 17):
    if scheme == "per-run":
        return [
            np.random.default_rng(np.random.SeedSequence([seed, run]))
            for run in range(count)
        ]
    return get_scheme(scheme).unit_streams(seed, (), 0, count)


@needs_cext
class TestThreadedKernelBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("threads", [2, 4])
    def test_cext_threads_match_numpy_reference(self, scheme, threads):
        code, tx_model, channel = _batch_args()
        reference = simulate_batch_columnar(
            code, tx_model, channel, _streams(scheme, 40), kernel="numpy"
        )
        one = simulate_batch_columnar(
            code, tx_model, channel, _streams(scheme, 40),
            kernel="cext", kernel_threads=1,
        )
        many = simulate_batch_columnar(
            code, tx_model, channel, _streams(scheme, 40),
            kernel="cext", kernel_threads=threads,
        )
        for batch in (one, many):
            assert np.array_equal(batch.decoded, reference.decoded)
            assert np.array_equal(batch.n_necessary, reference.n_necessary)
            assert np.array_equal(batch.n_received, reference.n_received)
            assert np.array_equal(batch.n_sent, reference.n_sent)

    @pytest.mark.parametrize("threads", [2, 8])
    def test_fill_sojourns_batch_thread_identity(self, threads):
        backend = get_backend("cext")
        numpy_backend = get_backend("numpy")
        rng = np.random.default_rng(5)
        num_runs, count, batch = 13, 64, 24
        states = rng.integers(0, 2, size=num_runs).astype(np.uint8)
        gap_runs = rng.integers(1, 9, size=(num_runs, batch)).astype(np.int64)
        burst_runs = rng.integers(1, 5, size=(num_runs, batch)).astype(np.int64)

        def run(kernel_backend, team):
            masks = np.zeros((num_runs, count), dtype=bool)
            with thread_count_context(team):
                filled = kernel_backend.fill_sojourns_batch(
                    masks, states, gap_runs, burst_runs
                )
            return masks, filled

        ref_masks, ref_filled = run(numpy_backend, 1)
        for team in (1, threads):
            masks, filled = run(backend, team)
            assert np.array_equal(masks, ref_masks)
            assert np.array_equal(filled, ref_filled)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_run_many_kernel_threads(self, scheme):
        code, tx_model, channel = _batch_args(k=80)

        def build():
            return Simulator(code, tx_model, channel)

        reference = build().run_many(6, rng=9, seed_scheme=scheme, fastpath=False)
        for threads in (1, 3):
            assert (
                build().run_many(
                    6, rng=9, seed_scheme=scheme,
                    kernel="cext", kernel_threads=threads,
                )
                == reference
            )


# ---------------------------------------------------------------------------
# ThreadExecutor: shared-memory pool, grid bit-identity across executors.
# ---------------------------------------------------------------------------


class TestThreadExecutor:
    def test_resolve_executor_thread(self):
        executor = resolve_executor("thread", 3)
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 3

    def test_resolve_executor_unknown_lists_thread(self):
        with pytest.raises(ValueError, match="thread"):
            resolve_executor("bogus", 2)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ThreadExecutor(-2)

    def test_run_preserves_unit_order_semantics(self):
        config = SimulationConfig(
            code="ldgm-staircase", tx_model="tx_model_2", k=60, expansion_ratio=2.5
        )
        units = plan_units(
            [((index,), config, 0.1, 0.5) for index in range(4)],
            runs=3,
            base_seed=11,
        )
        serial = {unit.seed_path: execute_unit(unit) for unit in units}
        collected = {}
        ThreadExecutor(2).run(
            units, lambda result: collected.__setitem__(result.seed_path, result)
        )
        assert collected == serial

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_grid_bit_identity_thread_vs_serial(self, scheme):
        config = SimulationConfig(
            code="ldgm-staircase", tx_model="tx_model_2", k=80, expansion_ratio=2.5
        )
        p, q = [0.02, 0.08], [0.5]
        base = simulate_grid(
            config, p, q, runs=5, seed=4, seed_scheme=scheme
        )
        threaded = simulate_grid(
            config, p, q, runs=5, seed=4, seed_scheme=scheme,
            executor="thread", workers=2, kernel_threads=2,
        )
        assert np.array_equal(base.mean_inefficiency, threaded.mean_inefficiency)
        assert np.array_equal(base.failure_counts, threaded.failure_counts)

    def test_grid_bit_identity_thread_vs_process(self):
        config = SimulationConfig(
            code="rse", tx_model="tx_model_2", k=40, expansion_ratio=2.0
        )
        p, q = [0.05], [0.5]
        threaded = simulate_grid(
            config, p, q, runs=4, seed=6, executor="thread", workers=2
        )
        pooled = simulate_grid(
            config, p, q, runs=4, seed=6, executor="process", workers=2
        )
        assert np.array_equal(threaded.mean_inefficiency, pooled.mean_inefficiency)


# ---------------------------------------------------------------------------
# Plumbing: work units, cache keys, CLI.
# ---------------------------------------------------------------------------


class TestKernelThreadsPlumbing:
    def _base(self):
        return dict(
            config=SimulationConfig(
                code="ldgm-staircase", tx_model="tx_model_2", k=60,
                expansion_ratio=2.5,
            ),
            p=0.1,
            q=0.5,
            seed_path=(0,),
            run_start=0,
            run_stop=4,
            base_seed=1,
        )

    def test_plan_units_threads_spec(self):
        config = SimulationConfig(
            code="rse", tx_model="tx_model_5", k=60, expansion_ratio=2.0
        )
        units = plan_units(
            [((0,), config, 0.1, 0.5)], runs=4, base_seed=3, kernel_threads=4
        )
        assert all(unit.kernel_threads == "4" for unit in units)

    def test_plan_units_rejects_bad_spec(self):
        config = SimulationConfig(
            code="rse", tx_model="tx_model_5", k=60, expansion_ratio=2.0
        )
        with pytest.raises(ValueError, match="kernel_threads"):
            plan_units(
                [((0,), config, 0.1, 0.5)], runs=4, base_seed=3,
                kernel_threads="bogus",
            )

    def test_payload_round_trip(self):
        unit = WorkUnit(**self._base(), kernel_threads="4")
        restored = WorkUnit.from_payload(unit.to_payload())
        assert restored.kernel_threads == "4"
        assert restored == unit

    def test_old_payload_defaults_to_none(self):
        payload = WorkUnit(**self._base()).to_payload()
        payload.pop("kernel_threads")
        assert WorkUnit.from_payload(payload).kernel_threads is None

    def test_kernel_threads_not_in_cache_key(self):
        base = self._base()
        assert unit_key(WorkUnit(**base)) == unit_key(
            WorkUnit(**base, kernel_threads="4")
        )
        assert unit_key(WorkUnit(**base, kernel_threads="auto")) == unit_key(
            WorkUnit(**base, kernel_threads="2")
        )

    def test_execute_unit_honours_spec(self):
        base = self._base()
        reference = execute_unit(WorkUnit(**base))
        threaded = execute_unit(WorkUnit(**base, kernel_threads="3"))
        assert threaded == reference

    def test_cli_kernel_threads_flag(self, capsys):
        exit_code = cli_main(
            [
                "run", "fig07", "--scale", "tiny", "--runs", "1",
                "--no-cache", "--quiet",
                "--executor", "thread", "--workers", "2",
                "--kernel-threads", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "kernel-threads=2" in captured.out

    def test_cli_bad_kernel_threads_fails_fast(self, capsys):
        exit_code = cli_main(
            ["run", "fig07", "--scale", "tiny", "--no-cache",
             "--kernel-threads", "bogus"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "kernel_threads" in captured.err


# ---------------------------------------------------------------------------
# Graceful degradation: poisoned OpenMP probe.
# ---------------------------------------------------------------------------


@needs_cext
class TestOpenMPDegradation:
    def test_poisoned_probe_degrades_to_serial(self, tmp_path, monkeypatch, caplog):
        import repro.kernels.cext as cext

        monkeypatch.setenv("CFLAGS", "-DREPRO_POISON_OPENMP")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        monkeypatch.setattr(cext, "_openmp_warned", False)

        with caplog.at_level("WARNING", logger="repro.kernels"):
            backend = cext.CExtBackend()
        assert backend.openmp is False
        warnings = [
            record for record in caplog.records
            if "OpenMP unavailable" in record.getMessage()
        ]
        assert len(warnings) == 1

        # Never crash, never change results: the serial fallback still
        # decodes bit-identically to the numpy reference, and an explicit
        # thread spec is forced down to one thread.
        code, tx_model, channel = _batch_args(k=60)
        reference = simulate_batch_columnar(
            code, tx_model, channel, _streams("per-run", 12), kernel="numpy"
        )
        with thread_count_context(4):
            assert backend._team_size(12) == 1
        degraded = simulate_batch_columnar(
            code, tx_model, channel, _streams("per-run", 12),
            kernel=backend, kernel_threads=4,
        )
        assert np.array_equal(degraded.decoded, reference.decoded)
        assert np.array_equal(degraded.n_necessary, reference.n_necessary)

        # A second backend in the same (poisoned) process stays quiet:
        # the warning fires once per process, not once per instance.
        with caplog.at_level("WARNING", logger="repro.kernels"):
            count_before = len(caplog.records)
            cext.CExtBackend()
        repeats = [
            record for record in caplog.records[count_before:]
            if "OpenMP unavailable" in record.getMessage()
        ]
        assert not repeats

    def test_openmp_provenance_reported(self):
        assert cext_openmp_enabled() in (True, False)
