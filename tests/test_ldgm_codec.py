"""Unit tests for LDGM encoding and payload decoding."""

import numpy as np
import pytest

from repro.fec import LDGMCode, LDGMStaircaseCode, LDGMTriangleCode
from repro.fec.ldgm.encoder import LDGMEncoder
from repro.fec.ldgm.matrix import build_parity_check_matrix


def make_payloads(rng, count, length=24):
    return [bytes(rng.integers(0, 256, size=length, dtype=np.uint8)) for _ in range(count)]


ALL_VARIANTS = [LDGMCode, LDGMStaircaseCode, LDGMTriangleCode]


class TestEncoder:
    @pytest.mark.parametrize("code_cls", ALL_VARIANTS)
    def test_systematic_prefix(self, rng, code_cls):
        code = code_cls(k=40, n=100, seed=1)
        payloads = make_payloads(rng, 40)
        encoded = code.new_encoder().encode(payloads)
        assert len(encoded) == 100
        assert encoded[:40] == payloads

    @pytest.mark.parametrize("code_cls", ALL_VARIANTS)
    def test_check_equations_hold(self, rng, code_cls):
        """Every check equation must XOR to zero over the encoded packets."""
        code = code_cls(k=30, n=75, seed=2)
        payloads = make_payloads(rng, 30, length=8)
        encoded = code.new_encoder().encode(payloads)
        symbols = np.vstack([np.frombuffer(p, dtype=np.uint8) for p in encoded])
        matrix = code.matrix
        for row in range(matrix.num_checks):
            total = np.zeros(8, dtype=np.uint8)
            for col in matrix.row_columns(row):
                total ^= symbols[int(col)]
            assert np.all(total == 0), f"check {row} violated"

    def test_wrong_payload_count_rejected(self, rng):
        code = LDGMStaircaseCode(k=10, n=30, seed=0)
        with pytest.raises(ValueError):
            code.new_encoder().encode(make_payloads(rng, 9))

    def test_unequal_payload_lengths_rejected(self, rng):
        code = LDGMStaircaseCode(k=4, n=10, seed=0)
        payloads = make_payloads(rng, 4)
        payloads[2] = payloads[2][:-1]
        with pytest.raises(ValueError):
            code.new_encoder().encode(payloads)

    def test_encode_arrays_helper(self, rng):
        matrix = build_parity_check_matrix(10, 25, "staircase", seed=0)
        encoder = LDGMEncoder(matrix)
        source = rng.integers(0, 256, size=(10, 6)).astype(np.uint8)
        encoded = encoder.encode_arrays(source)
        assert encoded.shape == (25, 6)
        assert np.array_equal(encoded[:10], source)


class TestPayloadDecoder:
    @pytest.mark.parametrize("code_cls", ALL_VARIANTS)
    def test_roundtrip_no_loss_random_order(self, rng, code_cls):
        code = code_cls(k=60, n=150, seed=3)
        payloads = make_payloads(rng, 60, length=8)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        for index in rng.permutation(150):
            if decoder.add_packet(int(index), encoded[int(index)]):
                break
        assert decoder.is_complete
        assert decoder.source_payloads() == payloads

    @pytest.mark.parametrize("code_cls", [LDGMStaircaseCode, LDGMTriangleCode])
    def test_roundtrip_with_erasures(self, rng, code_cls):
        code = code_cls(k=80, n=200, seed=4)
        payloads = make_payloads(rng, 80, length=8)
        encoded = code.new_encoder().encode(payloads)
        # Erase 30% of the packets and deliver the rest in random order.
        survivors = [i for i in range(200) if rng.random() > 0.3]
        rng.shuffle(survivors)
        decoder = code.new_decoder()
        for index in survivors:
            if decoder.add_packet(index, encoded[index]):
                break
        assert decoder.is_complete
        assert decoder.source_payloads() == payloads

    def test_duplicates_are_ignored(self, rng):
        code = LDGMStaircaseCode(k=20, n=50, seed=5)
        payloads = make_payloads(rng, 20)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        for _ in range(10):
            decoder.add_packet(0, encoded[0])
        assert decoder.decoded_source_count == 1

    def test_payload_length_mismatch_rejected(self, rng):
        code = LDGMStaircaseCode(k=10, n=25, seed=0)
        payloads = make_payloads(rng, 10)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        decoder.add_packet(0, encoded[0])
        with pytest.raises(ValueError):
            decoder.add_packet(1, encoded[1] + b"x")

    def test_incomplete_decoder_refuses_payloads(self):
        code = LDGMStaircaseCode(k=10, n=25, seed=0)
        decoder = code.new_decoder()
        with pytest.raises(RuntimeError):
            decoder.source_payloads()

    def test_out_of_range_index_rejected(self):
        code = LDGMStaircaseCode(k=10, n=25, seed=0)
        decoder = code.new_decoder()
        with pytest.raises(IndexError):
            decoder.add_packet(25, b"x" * 8)

    def test_parity_only_reception_is_insufficient_at_ratio_1_5(self, rng):
        """At expansion ratio 1.5 there are fewer parity packets than source
        packets, so LDGM decoding cannot complete from parity alone (the
        non-systematic use of section 4.5 needs source packets too)."""
        code = LDGMStaircaseCode(k=40, n=60, seed=6)
        payloads = make_payloads(rng, 40)
        encoded = code.new_encoder().encode(payloads)
        decoder = code.new_decoder()
        for index in range(40, 60):
            decoder.add_packet(index, encoded[index])
        assert not decoder.is_complete


class TestCodeProperties:
    def test_left_degree_property(self):
        code = LDGMStaircaseCode(k=100, n=250, seed=0)
        assert code.left_degree == 3

    def test_not_mds(self):
        assert not LDGMStaircaseCode(k=10, n=25, seed=0).is_mds

    def test_matrix_exposed(self):
        code = LDGMTriangleCode(k=10, n=25, seed=0)
        assert code.matrix.k == 10 and code.matrix.n == 25

    def test_names(self):
        assert LDGMCode.name == "ldgm"
        assert LDGMStaircaseCode.name == "ldgm-staircase"
        assert LDGMTriangleCode.name == "ldgm-triangle"
