"""Unit tests for GF(2^8) matrix algebra."""

import numpy as np
import pytest

from repro.galois.matrix import (
    SingularMatrixError,
    gf_identity,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    gf_mat_vec,
    gf_solve,
)


def random_invertible(rng, size):
    """Draw random matrices until one is invertible (almost always the first)."""
    while True:
        matrix = rng.integers(0, 256, size=(size, size)).astype(np.uint8)
        if gf_mat_rank(matrix) == size:
            return matrix


class TestIdentity:
    def test_identity_shape_and_values(self):
        identity = gf_identity(4)
        assert identity.shape == (4, 4)
        assert np.array_equal(identity, np.eye(4, dtype=np.uint8))

    def test_identity_zero_size(self):
        assert gf_identity(0).shape == (0, 0)

    def test_identity_negative_rejected(self):
        with pytest.raises(ValueError):
            gf_identity(-1)


class TestMatVec:
    def test_identity_matvec(self, rng):
        vector = rng.integers(0, 256, size=6).astype(np.uint8)
        assert np.array_equal(gf_mat_vec(gf_identity(6), vector), vector)

    def test_matvec_with_payload_matrix(self, rng):
        matrix = rng.integers(0, 256, size=(3, 4)).astype(np.uint8)
        payloads = rng.integers(0, 256, size=(4, 10)).astype(np.uint8)
        result = gf_mat_vec(matrix, payloads)
        assert result.shape == (3, 10)
        # Column-by-column equivalence with the 1-D product.
        for column in range(10):
            assert np.array_equal(result[:, column], gf_mat_vec(matrix, payloads[:, column]))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gf_mat_vec(np.zeros((2, 3), dtype=np.uint8), np.zeros(4, dtype=np.uint8))


class TestMatMul:
    def test_identity_is_neutral(self, rng):
        matrix = rng.integers(0, 256, size=(5, 5)).astype(np.uint8)
        assert np.array_equal(gf_mat_mul(gf_identity(5), matrix), matrix)
        assert np.array_equal(gf_mat_mul(matrix, gf_identity(5)), matrix)

    def test_associativity(self, rng):
        a = rng.integers(0, 256, size=(3, 4)).astype(np.uint8)
        b = rng.integers(0, 256, size=(4, 2)).astype(np.uint8)
        c = rng.integers(0, 256, size=(2, 5)).astype(np.uint8)
        assert np.array_equal(gf_mat_mul(gf_mat_mul(a, b), c), gf_mat_mul(a, gf_mat_mul(b, c)))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            gf_mat_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))


class TestInverse:
    def test_inverse_roundtrip(self, rng):
        for size in (1, 2, 5, 16):
            matrix = random_invertible(rng, size)
            inverse = gf_mat_inv(matrix)
            assert np.array_equal(gf_mat_mul(matrix, inverse), gf_identity(size))
            assert np.array_equal(gf_mat_mul(inverse, matrix), gf_identity(size))

    def test_singular_matrix_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            gf_mat_inv(singular)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))


class TestRank:
    def test_identity_rank(self):
        assert gf_mat_rank(gf_identity(7)) == 7

    def test_zero_matrix_rank(self):
        assert gf_mat_rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_duplicated_rows_reduce_rank(self, rng):
        matrix = rng.integers(0, 256, size=(4, 6)).astype(np.uint8)
        matrix[3] = matrix[0]
        assert gf_mat_rank(matrix) <= 3

    def test_rank_of_rectangular(self, rng):
        matrix = rng.integers(0, 256, size=(3, 8)).astype(np.uint8)
        assert gf_mat_rank(matrix) <= 3


class TestSolve:
    def test_solve_recovers_solution(self, rng):
        size = 6
        matrix = random_invertible(rng, size)
        solution = rng.integers(0, 256, size=size).astype(np.uint8)
        rhs = gf_mat_vec(matrix, solution)
        assert np.array_equal(gf_solve(matrix, rhs), solution)

    def test_solve_with_payloads(self, rng):
        size = 4
        matrix = random_invertible(rng, size)
        solution = rng.integers(0, 256, size=(size, 12)).astype(np.uint8)
        rhs = gf_mat_vec(matrix, solution)
        assert np.array_equal(gf_solve(matrix, rhs), solution)
