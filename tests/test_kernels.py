"""Tests for the pluggable kernel-backend subsystem (:mod:`repro.kernels`).

Covers the registry and its resolution rules, the flattened
:class:`ReceivedBatch` container, cross-backend bit-identity of the decode
and Gilbert hot loops (numpy reference vs loop backends vs the serial
incremental decoder), the chain-aware staircase cascade on handcrafted
bidiagonal matrices, and the ``kernel=`` threading through the simulator,
the runner work units and the CLI.  Compiled backends (``numba``,
``cext``) are exercised whenever this machine can build them and
skip-marked otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.bernoulli import BernoulliChannel, PerfectChannel
from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.fastpath import LDGMPrototype, compile_prototype, simulate_batch
from repro.fec.ldgm.matrix import LDGMVariant, ParityCheckMatrix
from repro.fec.ldgm.symbolic import LDGMSymbolicDecoder
from repro.fec.registry import make_code
from repro.kernels import (
    AUTO_ORDER,
    KernelBackend,
    KernelUnavailableError,
    ReceivedBatch,
    available_backends,
    cext_compiler_available,
    default_backend_name,
    get_backend,
    numba_available,
    register_backend,
)
from repro.kernels.numpy_backend import NumpyBackend, _dedup
from repro.runner.cache import unit_key
from repro.runner.cli import main as cli_main
from repro.runner.units import WorkUnit, execute_unit, plan_units
from repro.scheduling.registry import make_tx_model

#: Every backend this machine can run, in registry order.
KERNELS = list(available_backends())

CODES = [
    ("ldgm-staircase", 2.5),
    ("ldgm-triangle", 2.5),
    ("ldgm", 1.5),
    ("rse", 2.5),
    ("repetition", 2.0),
]

CHANNELS = [
    GilbertChannel(0.1, 0.4),
    GilbertChannel(0.9, 0.05),
    BernoulliChannel(0.2),
    PerfectChannel(),
]


def seeded_rngs(salt, runs):
    return [
        np.random.default_rng(np.random.SeedSequence([733, salt, run]))
        for run in range(runs)
    ]


def legacy_runs(code, tx_model, channel, rngs, nsent=None):
    return [
        Simulator(code, tx_model, channel).run(rng, nsent=nsent) for rng in rngs
    ]


# ---------------------------------------------------------------------------
# Registry and selection.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in KERNELS
        assert "python" in KERNELS
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert get_backend("numpy") is backend  # cached per name

    def test_backend_instance_passthrough(self):
        backend = get_backend("numpy")
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("no-such-backend")

    def test_auto_resolves_to_default(self):
        assert get_backend("auto").name == default_backend_name()
        assert default_backend_name() in AUTO_ORDER

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert get_backend(None).name == "python"
        monkeypatch.setenv("REPRO_KERNEL", "")
        assert get_backend(None).name == default_backend_name()

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_numba_unavailable_raises_actionable_error(self):
        with pytest.raises(KernelUnavailableError, match="numba"):
            get_backend("numba")
        assert "numba" not in available_backends()

    @pytest.mark.skipif(
        cext_compiler_available(), reason="a C compiler is available here"
    )
    def test_cext_unavailable_is_not_listed(self):
        assert "cext" not in available_backends()

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_backend_replace_and_dispatch(self):
        class Probe(NumpyBackend):
            name = "test-probe"

        try:
            register_backend("test-probe", Probe)
            assert isinstance(get_backend("test-probe"), Probe)
        finally:
            from repro.kernels import registry

            registry._FACTORIES.pop("test-probe", None)
            registry._INSTANCES.pop("test-probe", None)


# ---------------------------------------------------------------------------
# ReceivedBatch.
# ---------------------------------------------------------------------------


class TestReceivedBatch:
    def test_round_trip_and_slice(self):
        sequences = [
            np.array([3, 1, 4], dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.array([5, 9], dtype=np.int64),
        ]
        batch = ReceivedBatch.from_sequences(sequences)
        assert batch.num_runs == 3
        for expected, actual in zip(sequences, batch.sequences()):
            assert np.array_equal(expected, actual)
        tail = batch.slice(1, 3)
        assert tail.num_runs == 2
        assert np.array_equal(tail.run(1), sequences[2])
        assert batch.slice(0, 3) is batch  # full slice: no copy
        assert ReceivedBatch.coerce(batch) is batch

    def test_empty_batch(self):
        batch = ReceivedBatch.from_sequences([])
        assert batch.num_runs == 0
        assert batch.flat.size == 0


# ---------------------------------------------------------------------------
# Cross-backend bit-identity.
# ---------------------------------------------------------------------------


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("code_name,ratio", CODES)
    def test_codes_by_backend(self, kernel, code_name, ratio):
        code = make_code(code_name, k=60, expansion_ratio=ratio, seed=5)
        tx_model = make_tx_model("tx_model_2")
        for salt, channel in enumerate(CHANNELS):
            expected = legacy_runs(code, tx_model, channel, seeded_rngs(salt, 4))
            actual = simulate_batch(
                code, tx_model, channel, seeded_rngs(salt, 4), kernel=kernel
            )
            assert actual == expected, f"{kernel} diverged on {code_name}"

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("tx_name", ["tx_model_1", "tx_model_4", "tx_model_6"])
    def test_tx_models_by_backend(self, kernel, tx_name):
        code = make_code("ldgm-staircase", k=80, expansion_ratio=2.5, seed=2)
        tx_model = make_tx_model(tx_name)
        channel = GilbertChannel(0.15, 0.35)
        expected = legacy_runs(code, tx_model, channel, seeded_rngs(11, 5))
        actual = simulate_batch(
            code, tx_model, channel, seeded_rngs(11, 5), kernel=kernel
        )
        assert actual == expected

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_nsent_truncation_by_backend(self, kernel):
        code = make_code("ldgm-triangle", k=70, expansion_ratio=2.5, seed=9)
        tx_model = make_tx_model("tx_model_2")
        channel = GilbertChannel(0.1, 0.4)
        for nsent in (1, 60, 5_000):
            expected = legacy_runs(
                code, tx_model, channel, seeded_rngs(nsent, 3), nsent=nsent
            )
            actual = simulate_batch(
                code, tx_model, channel, seeded_rngs(nsent, 3), nsent=nsent,
                kernel=kernel,
            )
            assert actual == expected

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_duplicate_packets_by_backend(self, kernel):
        class DuplicatingModel:
            name = "dup"

            def schedule(self, layout, rng=None):
                base = np.arange(layout.n, dtype=np.int64)
                rng.shuffle(base)
                return np.concatenate([base[:7], base])

            def validate_schedule(self, layout, schedule):
                return np.asarray(schedule, dtype=np.int64)

        code = make_code("ldgm-staircase", k=40, expansion_ratio=2.5, seed=4)
        channel = GilbertChannel(0.2, 0.3)
        expected = legacy_runs(code, DuplicatingModel(), channel, seeded_rngs(2, 4))
        actual = simulate_batch(
            code, DuplicatingModel(), channel, seeded_rngs(2, 4), kernel=kernel
        )
        assert actual == expected

    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        code_index=st.integers(min_value=0, max_value=len(CODES) - 1),
        k=st.integers(min_value=2, max_value=50),
        p=st.floats(min_value=0.0, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_backends_agree(self, code_index, k, p, q, seed):
        code_name, ratio = CODES[code_index]
        try:
            code = make_code(code_name, k=k, expansion_ratio=ratio, seed=seed)
        except ValueError:
            return  # degenerate dimensions
        tx_model = make_tx_model("tx_model_2")
        channel = GilbertChannel(p, q)
        rngs = lambda: [
            np.random.default_rng(np.random.SeedSequence([seed, run]))
            for run in range(3)
        ]
        expected = legacy_runs(code, tx_model, channel, rngs())
        for kernel in KERNELS:
            actual = simulate_batch(code, tx_model, channel, rngs(), kernel=kernel)
            assert actual == expected, f"{kernel} diverged"


@pytest.mark.skipif(not numba_available(), reason="numba is not installed")
class TestNumbaBackend:
    """Compiled-twin checks that only run where numba is importable."""

    def test_numba_listed_and_constructs(self):
        assert "numba" in available_backends()
        assert get_backend("numba").name == "numba"

    def test_numba_matches_serial(self):
        code = make_code("ldgm-staircase", k=100, expansion_ratio=2.5, seed=3)
        tx_model = make_tx_model("tx_model_2")
        channel = GilbertChannel(0.1, 0.4)
        expected = legacy_runs(code, tx_model, channel, seeded_rngs(0, 6))
        actual = simulate_batch(
            code, tx_model, channel, seeded_rngs(0, 6), kernel="numba"
        )
        assert actual == expected


# ---------------------------------------------------------------------------
# Chain-aware staircase cascade (handcrafted bidiagonal matrices).
# ---------------------------------------------------------------------------


class _MatrixCode:
    """Minimal code shim binding a handcrafted matrix to the prototype."""

    def __init__(self, matrix: ParityCheckMatrix):
        self.matrix = matrix
        self.k = matrix.k
        self.n = matrix.n

    def new_symbolic_decoder(self):
        return LDGMSymbolicDecoder(self.matrix)


def _staircase_matrix() -> ParityCheckMatrix:
    """k=3, 5 checks: row 0 anchors the chain, rows 1-3 are parity-only.

    Receiving sources 0 and 1 reveals parity 3 through row 0, whose
    downstream rows 1-3 are chain-eligible from the start -- a pure
    staircase reveal chain of length 3.
    """
    empty = np.array([], dtype=np.int64)
    return ParityCheckMatrix(
        k=3,
        n=8,
        variant=LDGMVariant.STAIRCASE,
        source_cols=[
            np.array([0, 1], dtype=np.int64),
            empty,
            empty,
            empty,
            np.array([2], dtype=np.int64),
        ],
        parity_cols=[
            np.array([3], dtype=np.int64),
            np.array([3, 4], dtype=np.int64),
            np.array([4, 5], dtype=np.int64),
            np.array([5, 6], dtype=np.int64),
            np.array([6, 7], dtype=np.int64),
        ],
    )


def _triangle_matrix() -> ParityCheckMatrix:
    """The staircase above plus one below-diagonal extra (parity 4 in row 4)."""
    matrix = _staircase_matrix()
    matrix.parity_cols[4] = np.array([4, 6, 7], dtype=np.int64)
    return ParityCheckMatrix(
        k=matrix.k,
        n=matrix.n,
        variant=LDGMVariant.TRIANGLE,
        source_cols=matrix.source_cols,
        parity_cols=matrix.parity_cols,
    )


class TestChainAwareCascade:
    def test_detection_on_handcrafted_staircase(self):
        prototype = LDGMPrototype(_MatrixCode(_staircase_matrix()), kernel="numpy")
        assert prototype.chain_aware
        # Row 2 holds parities {4, 5} = nodes {3+1, 3+2}: expected word is
        # count 2 with id sum 9; row 0 can never be chain-eligible.
        assert prototype.chain_expected[2] == (2 << 40) + 9
        assert prototype.chain_expected[0] == -1
        assert prototype.chain_expected[-1] == -1  # sentinel slot
        # Pure staircase: no extra below-diagonal parity edges.
        assert prototype.parity_extra_rows.size == 0

    def test_detection_on_handcrafted_triangle(self):
        prototype = LDGMPrototype(_MatrixCode(_triangle_matrix()), kernel="numpy")
        assert prototype.chain_aware
        # Parity index 1 (node 4) additionally sits in check row 4.
        start = prototype.parity_extra_indptr[1]
        stop = prototype.parity_extra_indptr[2]
        assert list(prototype.parity_extra_rows[start:stop]) == [4]

    def test_no_detection_on_plain_ldgm(self):
        code = make_code("ldgm", k=30, expansion_ratio=1.5, seed=0)
        prototype = compile_prototype(code, kernel="numpy")
        assert isinstance(prototype, LDGMPrototype)
        assert not prototype.chain_aware

    def test_no_detection_on_tiny_codes(self):
        code = make_code("ldgm-staircase", k=4, n=5, seed=0)
        prototype = compile_prototype(code, kernel="numpy")
        assert not prototype.chain_aware  # a single check row has no chain

    @pytest.mark.parametrize("build", [_staircase_matrix, _triangle_matrix])
    def test_chain_resolves_in_one_scan(self, build):
        code = _MatrixCode(build())
        prototype = LDGMPrototype(code, kernel="numpy")
        backend = NumpyBackend()
        # Sources 0 and 1 reveal parity 3; the whole downstream chain must
        # resolve in the same cascade round (one chain scan), then packet 7
        # releases source 2 and completes decoding at position 3.
        received = [np.array([0, 1, 7], dtype=np.int64)]
        decoded, n_necessary = backend.ldgm_decode_batch(
            prototype, ReceivedBatch.from_sequences(received)
        )
        assert decoded.tolist() == [True]
        assert n_necessary.tolist() == [3]
        assert backend.last_chain_scans == 1
        # The reference: one packet at a time through the symbolic decoder.
        decoder = code.new_symbolic_decoder()
        positions = [decoder.add_packet(i) for i in received[0]]
        assert positions == [False, False, True]

    def test_initial_unit_row_is_not_spontaneously_peeled(self):
        # A degenerate matrix may carry a check row whose INITIAL unknown
        # count is already 1 (a parity-only row with no sources, the
        # documented degenerate outcome of _fill_empty_rows).  The
        # incremental decoder only examines rows on decrement, so it never
        # peels from such a row -- and neither may the numpy cascade's
        # bulk-round full-state trigger scan.  Regression test: the scan
        # once revealed row 0's parity here, decoding a run the reference
        # leaves undecoded.
        matrix = ParityCheckMatrix(
            k=8,
            n=10,
            variant=LDGMVariant.STAIRCASE,
            source_cols=[
                np.array([], dtype=np.int64),
                np.arange(8, dtype=np.int64),
            ],
            parity_cols=[
                np.array([8], dtype=np.int64),
                np.array([8, 9], dtype=np.int64),
            ],
        )
        code = _MatrixCode(matrix)
        # Seven of the eight sources plus parity 9: source 0 is only
        # recoverable through row 1, which still holds {0, 8} -- and 8 is
        # only revealed if something wrongly peels the untouched row 0.
        received = [np.array([1, 2, 3, 4, 5, 6, 7, 9], dtype=np.int64)]
        for kernel in KERNELS:
            prototype = LDGMPrototype(code, kernel=kernel)
            decoded, n_necessary = prototype.decode_batch(received)
            assert decoded.tolist() == [False], kernel
            assert n_necessary.tolist() == [-1], kernel

    @pytest.mark.parametrize("build", [_staircase_matrix, _triangle_matrix])
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_handcrafted_chain_all_backends(self, build, kernel):
        code = _MatrixCode(build())
        prototype = LDGMPrototype(code, kernel=kernel)
        rng = np.random.default_rng(17)
        sequences = [
            rng.permutation(np.arange(code.n, dtype=np.int64))[: 3 + rng.integers(6)]
            for _ in range(12)
        ]
        decoded, n_necessary = prototype.decode_batch(sequences)
        for run, sequence in enumerate(sequences):
            decoder = code.new_symbolic_decoder()
            expected = -1
            for count, index in enumerate(sequence, start=1):
                if decoder.add_packet(index):
                    expected = count
                    break
            assert decoded[run] == decoder.is_complete
            assert n_necessary[run] == expected


# ---------------------------------------------------------------------------
# Gilbert sojourn fill and the seen-mask dedup.
# ---------------------------------------------------------------------------


class TestGilbertFillBackends:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_masks_and_generator_state_match_serial(self, kernel):
        grid = [0.0, 0.01, 0.3, 0.9, 1.0]
        for p in grid:
            for q in grid:
                channel = GilbertChannel(p, q)
                for count in (0, 1, 255, 256, 513):
                    fast = np.random.default_rng(41)
                    slow = np.random.default_rng(41)
                    assert np.array_equal(
                        channel.loss_mask(count, fast, kernel=kernel),
                        channel._loss_mask_serial(count, slow),
                    ), (kernel, p, q, count)
                    assert fast.integers(1 << 30) == slow.integers(1 << 30)


class TestSeenMaskDedup:
    def test_dedup_and_scratch_reset(self):
        scratch = np.full(16, -1, dtype=np.int64)
        nodes = np.array([5, 3, 5, 9, 3, 3], dtype=np.int64)
        out = _dedup(nodes, scratch)
        assert sorted(out.tolist()) == [3, 5, 9]
        assert (scratch == -1).all()  # touched entries reset for the next round

    def test_dedup_short_arrays_pass_through(self):
        scratch = np.full(4, -1, dtype=np.int64)
        single = np.array([2], dtype=np.int64)
        assert _dedup(single, scratch) is single


# ---------------------------------------------------------------------------
# kernel= threading: simulator, runner units, cache keys, CLI.
# ---------------------------------------------------------------------------


class TestKernelThreading:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_run_many_kernel(self, kernel):
        code = make_code("ldgm-staircase", k=80, expansion_ratio=2.5, seed=2)

        def build():
            return Simulator(
                code, make_tx_model("tx_model_2"), GilbertChannel(0.1, 0.4)
            )

        expected = build().run_many(5, rng=8, fastpath=False)
        assert build().run_many(5, rng=8, kernel=kernel) == expected

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_work_unit_kernel(self, kernel):
        def unit(**overrides):
            parameters = dict(
                config=SimulationConfig(
                    code="ldgm-staircase",
                    tx_model="tx_model_2",
                    k=80,
                    expansion_ratio=2.5,
                ),
                p=0.1,
                q=0.5,
                seed_path=(1,),
                run_start=0,
                run_stop=4,
                base_seed=13,
            )
            parameters.update(overrides)
            return WorkUnit(**parameters)

        reference = execute_unit(unit(fastpath=False))
        assert execute_unit(unit(kernel=kernel)) == reference

    def test_plan_units_threads_kernel(self):
        config = SimulationConfig(
            code="rse", tx_model="tx_model_5", k=60, expansion_ratio=2.0
        )
        units = plan_units(
            [((0,), config, 0.1, 0.5)], runs=4, base_seed=3, kernel="numpy"
        )
        assert all(unit.kernel == "numpy" for unit in units)

    def test_kernel_not_in_cache_key(self):
        config = SimulationConfig(
            code="ldgm-staircase", tx_model="tx_model_2", k=60, expansion_ratio=2.5
        )
        base = dict(
            config=config,
            p=0.1,
            q=0.5,
            seed_path=(0,),
            run_start=0,
            run_stop=4,
            base_seed=1,
        )
        assert unit_key(WorkUnit(**base, kernel=None)) == unit_key(
            WorkUnit(**base, kernel="numpy")
        )

    def test_cli_kernel_flag(self, tmp_path, capsys):
        exit_code = cli_main(
            [
                "run",
                "fig07",
                "--scale",
                "tiny",
                "--runs",
                "1",
                "--no-cache",
                "--quiet",
                "--kernel",
                "numpy",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "kernel=numpy" in captured.out

    def test_cli_unknown_kernel_fails_fast(self, capsys):
        exit_code = cli_main(
            ["run", "fig07", "--scale", "tiny", "--no-cache", "--kernel", "bogus"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown kernel backend" in captured.err


class TestPrototypeKernelCache:
    def test_prototype_cached_per_backend(self):
        code = make_code("ldgm-staircase", k=30, expansion_ratio=2.5, seed=0)
        numpy_proto = compile_prototype(code, kernel="numpy")
        assert compile_prototype(code, kernel="numpy") is numpy_proto
        python_proto = compile_prototype(code, kernel="python")
        assert python_proto is not numpy_proto
        assert compile_prototype(code, kernel="python") is python_proto
