"""Unit tests for the ML (Gaussian elimination) LDGM decoder extension."""

import numpy as np
import pytest

from repro.fec import LDGMStaircaseCode, LDGMTriangleCode
from repro.fec.ldgm.ml_decoder import ml_decodable, ml_necessary_count


class TestMlDecodable:
    def test_everything_received_is_decodable(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=0)
        known = np.ones(75, dtype=bool)
        assert ml_decodable(code.matrix, known)

    def test_nothing_received_is_not_decodable(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=0)
        known = np.zeros(75, dtype=bool)
        assert not ml_decodable(code.matrix, known)

    def test_more_unknowns_than_checks_is_not_decodable(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=0)
        known = np.zeros(75, dtype=bool)
        known[:20] = True  # 55 unknowns > 45 checks
        assert not ml_decodable(code.matrix, known)

    def test_single_missing_packet_is_decodable(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=1)
        known = np.ones(75, dtype=bool)
        known[13] = False
        assert ml_decodable(code.matrix, known)

    def test_wrong_mask_shape_rejected(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=1)
        with pytest.raises(ValueError):
            ml_decodable(code.matrix, np.ones(10, dtype=bool))

    def test_ml_at_least_as_strong_as_iterative(self, rng):
        """Whenever the iterative decoder succeeds, ML must succeed too."""
        code = LDGMTriangleCode(k=60, n=150, seed=2)
        for trial in range(5):
            order = rng.permutation(150)
            received = order[: int(0.75 * 150)]
            iterative = code.new_symbolic_decoder()
            for index in received:
                iterative.add_packet(int(index))
            if iterative.is_complete:
                known = np.zeros(150, dtype=bool)
                known[received] = True
                assert ml_decodable(code.matrix, known)


class TestMlNecessaryCount:
    def test_returns_none_when_undecodable(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=3)
        assert ml_necessary_count(code.matrix, list(range(10))) is None

    def test_counts_prefix_length(self, rng):
        code = LDGMStaircaseCode(k=50, n=125, seed=4)
        order = [int(i) for i in rng.permutation(125)]
        needed = ml_necessary_count(code.matrix, order)
        assert needed is not None
        assert 50 <= needed <= 125
        # The prefix of that length is decodable, one packet fewer is not.
        known = np.zeros(125, dtype=bool)
        known[order[:needed]] = True
        assert ml_decodable(code.matrix, known)
        known[order[needed - 1]] = False
        assert not ml_decodable(code.matrix, known)

    def test_ml_needs_no_more_than_iterative(self, rng):
        code = LDGMStaircaseCode(k=60, n=150, seed=5)
        order = [int(i) for i in rng.permutation(150)]
        iterative = code.new_symbolic_decoder()
        iterative_needed = iterative.add_packets(order)
        ml_needed = ml_necessary_count(code.matrix, order)
        assert iterative.is_complete
        assert ml_needed is not None
        assert ml_needed <= iterative_needed

    def test_duplicates_counted_as_received_packets(self):
        code = LDGMStaircaseCode(k=20, n=50, seed=6)
        order = [0, 0, 0] + list(range(50))
        needed = ml_necessary_count(code.matrix, order)
        assert needed is not None
        assert needed >= 20
