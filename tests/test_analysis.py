"""Unit tests for the analysis helpers (tables, surfaces, CSV, comparison, report)."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_TABLES,
    ascii_surface,
    compare_at_point,
    format_comparison_table,
    format_grid_table,
    grid_from_csv,
    grid_to_csv,
    recommendation_report,
)
from repro.analysis.paper_data import FIGURE15_REFERENCE, get_table_summary
from repro.core.config import SimulationConfig
from repro.core.metrics import GridResult
from repro.core.sweep import simulate_grid


@pytest.fixture(scope="module")
def sample_grid():
    return GridResult(
        p_values=[0.0, 0.05, 0.2],
        q_values=[0.5, 1.0],
        mean_inefficiency=np.array([[1.0, 1.0], [1.08, 1.05], [np.nan, 1.12]]),
        mean_received_ratio=np.array([[2.5, 2.5], [2.3, 2.4], [1.4, 2.1]]),
        failure_counts=np.array([[0, 0], [0, 0], [2, 0]]),
        runs=5,
        label="sample / grid",
    )


class TestGridTable:
    def test_contains_axes_and_values(self, sample_grid):
        table = format_grid_table(sample_grid)
        assert "p \\ q" in table
        assert "1.080" in table
        assert "-" in table  # the failed point
        assert table.splitlines()[0] == "sample / grid"

    def test_percent_axes(self, sample_grid):
        table = format_grid_table(sample_grid)
        assert "100" in table and "50" in table

    def test_probability_axes(self, sample_grid):
        table = format_grid_table(sample_grid, percent_axes=False)
        assert "0.05" in table

    def test_custom_title_and_precision(self, sample_grid):
        table = format_grid_table(sample_grid, title="Table X", precision=2)
        assert table.startswith("Table X")
        assert "1.08" in table


class TestComparisonTable:
    def test_layout(self):
        values = {
            "tx_model_2": {"rse": 1.09, "ldgm-staircase": 1.02},
            "tx_model_4": {"rse": 1.25, "ldgm-staircase": float("nan")},
        }
        table = format_comparison_table(values, row_order=["tx_model_2", "tx_model_4"],
                                        column_order=["rse", "ldgm-staircase"])
        lines = table.splitlines()
        assert "rse" in lines[0] and "ldgm-staircase" in lines[0]
        assert "1.090" in lines[1]
        assert "-" in lines[2]


class TestAsciiSurface:
    def test_rendering(self, sample_grid):
        art = ascii_surface(sample_grid)
        assert "p\\q" in art
        assert "legend" in art
        # The failed point renders as a blank.
        assert any(line.count(" ") for line in art.splitlines())

    def test_empty_ramp_rejected(self, sample_grid):
        with pytest.raises(ValueError):
            ascii_surface(sample_grid, ramp="")


class TestCsvRoundtrip:
    def test_roundtrip_preserves_grid(self, sample_grid, tmp_path):
        path = tmp_path / "grid.csv"
        grid_to_csv(sample_grid, path)
        restored = grid_from_csv(path)
        assert restored.label == sample_grid.label
        assert restored.runs == sample_grid.runs
        assert np.allclose(restored.p_values, sample_grid.p_values)
        assert np.allclose(restored.q_values, sample_grid.q_values)
        assert np.allclose(
            restored.mean_inefficiency, sample_grid.mean_inefficiency, equal_nan=True
        )
        assert np.array_equal(restored.failure_counts, sample_grid.failure_counts)

    def test_roundtrip_from_text(self, sample_grid):
        text = grid_to_csv(sample_grid)
        restored = grid_from_csv(text)
        assert np.allclose(
            restored.mean_inefficiency, sample_grid.mean_inefficiency, equal_nan=True
        )

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            grid_from_csv("# label: x\n# runs: 1\np,q,mean_inefficiency,mean_received_ratio,failures,runs\n")


class TestCompareAtPoint:
    def test_small_comparison(self):
        result = compare_at_point(
            0.01, 0.8, expansion_ratio=2.5, k=200,
            codes=("rse", "ldgm-staircase"),
            tx_models=("tx_model_2", "tx_model_5"),
            runs=3, seed=1,
        )
        assert set(result.values) == {"tx_model_2", "tx_model_5"}
        for tx_model, row in result.values.items():
            assert set(row) == {"rse", "ldgm-staircase"}
        tx_best, code_best, value = result.best()
        assert value >= 1.0

    def test_tx_model_6_skipped_at_small_ratio(self):
        result = compare_at_point(
            0.01, 0.8, expansion_ratio=1.5, k=150,
            codes=("ldgm-staircase",), tx_models=("tx_model_6",), runs=1, seed=0,
        )
        assert result.values == {}
        with pytest.raises(ValueError):
            result.best()


class TestPaperData:
    def test_all_nine_tables_present(self):
        assert {f"table{i}" for i in range(1, 10)} <= set(PAPER_TABLES)

    def test_reference_points_within_range(self):
        for summary in PAPER_TABLES.values():
            low, high = summary.value_range
            assert low <= high
            for value in summary.reference_points.values():
                assert low - 1e-9 <= value <= high + 1e-9 or value == 1.0

    def test_lookup_helpers(self):
        assert get_table_summary("TABLE5").code == "ldgm-triangle"
        with pytest.raises(KeyError):
            get_table_summary("table99")

    def test_figure15_reference_structure(self):
        assert set(FIGURE15_REFERENCE) == {1.5, 2.5}
        assert "tx_model_4" in FIGURE15_REFERENCE[2.5]


class TestRecommendationReport:
    def test_unknown_channel_report(self):
        report = recommendation_report()
        assert "unknown" in report.lower()
        assert "ldgm-triangle + tx_model_4" in report

    def test_known_channel_report(self):
        report = recommendation_report(0.01, 0.8, k=200, runs=2, seed=3, top=3)
        assert "Gilbert p=0.0100" in report
        assert "1." in report
