"""Unit tests for the shared utilities."""

import numpy as np
import pytest

from repro.utils.rng import as_seed_int, derive_seed, ensure_rng, spawn_rngs
from repro.utils.validation import (
    validate_expansion_ratio,
    validate_fraction,
    validate_k_n,
    validate_positive_int,
    validate_probability,
)


class TestEnsureRng:
    def test_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_from_int_is_deterministic(self):
        assert ensure_rng(5).integers(1000) == ensure_rng(5).integers(1000)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_from_seed_sequence(self):
        sequence = np.random.SeedSequence(9)
        assert isinstance(ensure_rng(sequence), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        draws = [generator.integers(10**9) for generator in rngs]
        assert len(set(draws)) == 4

    def test_deterministic(self):
        first = [generator.integers(10**9) for generator in spawn_rngs(3, 3)]
        second = [generator.integers(10**9) for generator in spawn_rngs(3, 3)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestAsSeedInt:
    def test_none_maps_to_zero(self):
        assert as_seed_int(None) == 0

    def test_int_passthrough(self):
        assert as_seed_int(42) == 42
        assert as_seed_int(np.int64(7)) == 7

    def test_seed_sequence_is_deterministic(self):
        assert as_seed_int(np.random.SeedSequence(5)) == as_seed_int(
            np.random.SeedSequence(5)
        )

    def test_generator_draws_once(self):
        first = as_seed_int(np.random.default_rng(3))
        second = as_seed_int(np.random.default_rng(3))
        assert first == second

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            as_seed_int("seed")


class TestDeriveSeed:
    def test_deterministic_and_salt_sensitive(self):
        assert derive_seed(7, "channel") == derive_seed(7, "channel")
        assert derive_seed(7, "channel") != derive_seed(7, "scheduler")
        assert derive_seed(7, "channel") != derive_seed(8, "channel")


class TestValidation:
    def test_positive_int(self):
        assert validate_positive_int(3, "x") == 3
        assert validate_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ValueError):
            validate_positive_int(0, "x")
        with pytest.raises(TypeError):
            validate_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            validate_positive_int(True, "x")

    def test_probability(self):
        assert validate_probability(0.5, "p") == 0.5
        assert validate_probability(0, "p") == 0.0
        with pytest.raises(ValueError):
            validate_probability(1.2, "p")
        with pytest.raises(ValueError):
            validate_probability(float("nan"), "p")
        with pytest.raises(TypeError):
            validate_probability("half", "p")

    def test_fraction(self):
        assert validate_fraction(0.0, "f") == 0.0
        with pytest.raises(ValueError):
            validate_fraction(0.0, "f", allow_zero=False)

    def test_expansion_ratio(self):
        assert validate_expansion_ratio(1.5) == 1.5
        with pytest.raises(ValueError):
            validate_expansion_ratio(1.0)
        with pytest.raises(TypeError):
            validate_expansion_ratio("big")

    def test_k_n(self):
        assert validate_k_n(10, 25) == (10, 25)
        with pytest.raises(ValueError):
            validate_k_n(10, 10)
