"""Integration tests checking the qualitative shapes reported by the paper.

These tests run small but real simulations and assert the *orderings* and
*patterns* the paper emphasises -- not absolute values, which depend on the
object size (we use k in the hundreds here, the paper uses 20 000).
They are the executable summary of section 6.1.
"""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats
from repro.core.simulator import Simulator
from repro.core.sweep import simulate_grid, sweep_parameter
from repro.channel import GilbertChannel, PerfectChannel


K = 600
RUNS = 4
SEED = 2024


def mean_inefficiency(code, tx_model, ratio, p, q, runs=RUNS, k=K, tx_options=None, seed=SEED):
    """Average inefficiency of successful runs (NaN if all runs fail)."""
    config = SimulationConfig(
        code=code, tx_model=tx_model, k=k, expansion_ratio=ratio, tx_options=tx_options or {}
    )
    channel = GilbertChannel(p, q) if (p, q) != (0.0, 0.0) else PerfectChannel()
    built = config.build_code(seed=np.random.default_rng(seed))
    simulator = Simulator(built, config.build_tx_model(), channel)
    stats = CellStats()
    for run in range(runs):
        stats.add(simulator.run(np.random.default_rng(np.random.SeedSequence([seed, run]))))
    return stats.mean_inefficiency_of_successes, stats.failures


class TestSection42NoFec:
    def test_repetition_only_works_without_loss(self):
        """Figure 7: with 2 repetitions instead of FEC, decoding needs ~2k
        packets at p = 0 and fails for p > 0."""
        perfect, failures = mean_inefficiency("repetition", "tx_model_4", 2.0, 0.0, 1.0)
        assert failures == 0
        assert perfect > 1.7
        _, failures_lossy = mean_inefficiency("repetition", "tx_model_4", 2.0, 0.10, 0.5)
        assert failures_lossy > 0


class TestTxModel1:
    def test_without_loss_is_ideal(self):
        value, failures = mean_inefficiency("ldgm-triangle", "tx_model_1", 2.5, 0.0, 0.0)
        assert failures == 0 and value == pytest.approx(1.0)

    def test_with_bursty_loss_receiver_waits_for_the_end(self):
        """Figure 8: with losses the inefficiency tracks n_received / k, i.e.
        the receiver has to wait for most of the transmission, which makes
        Tx_model_1 far worse than Tx_model_2 on the same channel."""
        config = SimulationConfig(code="ldgm-triangle", tx_model="tx_model_1", k=K, expansion_ratio=2.5)
        grid = simulate_grid(config, [0.05], [0.3], runs=RUNS, seed=SEED)
        inefficiency = grid.mean_inefficiency[0, 0]
        received = grid.mean_received_ratio[0, 0]
        assert np.isfinite(inefficiency)
        # The receiver needs most of everything it will ever receive (the gap
        # is wider here than in the paper because k is 30x smaller).
        assert inefficiency >= 0.8 * received
        better, better_failures = mean_inefficiency("ldgm-triangle", "tx_model_2", 2.5, 0.05, 0.3)
        assert better_failures == 0
        assert inefficiency > better + 0.3


class TestTxModel2:
    def test_ldgm_outperforms_rse(self):
        """Figure 9: LDGM codes beat RSE under Tx_model_2 at ratio 2.5."""
        rse, _ = mean_inefficiency("rse", "tx_model_2", 2.5, 0.05, 0.5, k=2000)
        staircase, _ = mean_inefficiency("ldgm-staircase", "tx_model_2", 2.5, 0.05, 0.5, k=2000)
        assert staircase < rse

    def test_triangle_better_than_staircase_under_bursts(self):
        """Tables 1-2: at higher loss rates Triangle beats Staircase."""
        triangle, triangle_failures = mean_inefficiency("ldgm-triangle", "tx_model_2", 2.5, 0.2, 0.5)
        staircase, staircase_failures = mean_inefficiency("ldgm-staircase", "tx_model_2", 2.5, 0.2, 0.5)
        assert triangle_failures == 0
        assert triangle < staircase

    def test_staircase_better_at_low_loss(self):
        """Tables 1-2: with few losses Staircase is the more efficient code."""
        triangle, _ = mean_inefficiency("ldgm-triangle", "tx_model_2", 2.5, 0.01, 1.0)
        staircase, _ = mean_inefficiency("ldgm-staircase", "tx_model_2", 2.5, 0.01, 1.0)
        assert staircase < triangle

    def test_no_loss_is_ideal_for_all_codes(self):
        for code in ("rse", "ldgm-staircase", "ldgm-triangle"):
            value, failures = mean_inefficiency(code, "tx_model_2", 2.5, 0.0, 0.0)
            assert failures == 0 and value == pytest.approx(1.0), code


class TestTxModel3:
    def test_inefficiency_close_to_ratio_without_loss(self):
        """Figure 10: at p = 0 the receiver needs ~all parity packets first,
        so the inefficiency is close to the expansion ratio."""
        value, failures = mean_inefficiency("ldgm-staircase", "tx_model_3", 2.5, 0.0, 0.0)
        assert failures == 0
        assert value > 1.45


class TestTxModel4:
    def test_performance_nearly_independent_of_loss_pattern(self):
        """Figure 11 / Table 5: Tx_model_4 is insensitive to the channel."""
        values = []
        for (p, q) in [(0.0, 1.0), (0.05, 0.5), (0.3, 0.7)]:
            value, failures = mean_inefficiency("ldgm-staircase", "tx_model_4", 2.5, p, q)
            assert failures == 0
            values.append(value)
        assert max(values) - min(values) < 0.05

    def test_rse_worst_at_large_k(self):
        """Figure 11(a): RSE has the highest inefficiency because of the
        coupon-collector effect across its many blocks."""
        rse, _ = mean_inefficiency("rse", "tx_model_4", 2.5, 0.05, 0.5, k=4000, runs=2)
        staircase, _ = mean_inefficiency("ldgm-staircase", "tx_model_4", 2.5, 0.05, 0.5, k=4000, runs=2)
        assert staircase < rse


class TestTxModel5:
    def test_interleaving_is_best_scheme_for_rse(self):
        """Figure 12: RSE + interleaving beats RSE + sequential transmission."""
        k = 2000
        interleaved, interleaved_failures = mean_inefficiency("rse", "tx_model_5", 2.5, 0.05, 0.3, k=k)
        sequential, sequential_failures = mean_inefficiency("rse", "tx_model_1", 2.5, 0.05, 0.3, k=k)
        assert interleaved_failures == 0
        assert interleaved < sequential or sequential_failures > 0

    def test_rse_perfect_channel_is_ideal(self):
        value, failures = mean_inefficiency("rse", "tx_model_5", 2.5, 0.0, 0.0, k=2000)
        assert failures == 0 and value == pytest.approx(1.0)


class TestTxModel6:
    def test_staircase_beats_triangle(self):
        """Figure 13: unusually, LDGM Staircase outperforms Triangle here."""
        options = {"source_fraction": 0.2}
        staircase, staircase_failures = mean_inefficiency(
            "ldgm-staircase", "tx_model_6", 2.5, 0.05, 0.5, tx_options=options
        )
        triangle, _ = mean_inefficiency(
            "ldgm-triangle", "tx_model_6", 2.5, 0.05, 0.5, tx_options=options
        )
        assert staircase_failures == 0
        assert staircase < triangle

    def test_staircase_performance_is_flat(self):
        """Table 9: LDGM Staircase + Tx_model_6 is almost channel independent."""
        options = {"source_fraction": 0.2}
        values = []
        for (p, q) in [(0.0, 1.0), (0.05, 0.5), (0.2, 0.8)]:
            value, failures = mean_inefficiency(
                "ldgm-staircase", "tx_model_6", 2.5, p, q, tx_options=options
            )
            assert failures == 0
            values.append(value)
        assert max(values) - min(values) < 0.05


class TestRxModel1:
    def test_sweet_spot_in_received_source_packets(self):
        """Figure 14: receiving a few percent of the source packets (the
        paper finds 400-1000 out of 20000) is better than receiving a single
        one or than receiving half of them."""
        def make_config(num_source):
            return SimulationConfig(
                code="ldgm-staircase",
                tx_model="rx_model_1",
                k=1000,
                expansion_ratio=2.5,
                tx_options={"num_source_packets": int(num_source)},
            )

        series = sweep_parameter(
            make_config, [1, 30, 500], parameter_name="source packets",
            p=0.0, q=1.0, runs=5, seed=SEED,
        )
        assert np.all(series.failure_counts == 0)
        one, sweet_spot, half = series.mean_inefficiency
        assert sweet_spot < one
        assert sweet_spot < half


class TestDecodabilityLimits:
    def test_simulation_respects_figure6_limits(self):
        """No configuration decodes reliably below the analytic limit."""
        config = SimulationConfig(code="ldgm-staircase", tx_model="tx_model_4", k=400, expansion_ratio=1.5)
        grid = simulate_grid(config, [0.6], [0.2], runs=3, seed=SEED)
        # p=0.6, q=0.2 -> 75% loss; ratio 1.5 cannot deliver k packets.
        assert grid.failure_counts[0, 0] > 0
