"""Unit tests for packet/layout abstractions."""

import numpy as np
import pytest

from repro.fec.packet import (
    BlockLayout,
    Packet,
    PacketKind,
    PacketLayout,
    multi_block_layout,
    single_block_layout,
)


class TestPacket:
    def test_source_and_parity_flags(self):
        source = Packet(index=0, kind=PacketKind.SOURCE)
        parity = Packet(index=10, kind=PacketKind.PARITY)
        assert source.is_source and not source.is_parity
        assert parity.is_parity and not parity.is_source


class TestSingleBlockLayout:
    def test_dimensions(self):
        layout = single_block_layout(10, 25)
        assert layout.k == 10
        assert layout.n == 25
        assert layout.num_blocks == 1
        assert layout.expansion_ratio == 2.5

    def test_index_partition(self):
        layout = single_block_layout(10, 25)
        assert layout.source_indices.tolist() == list(range(10))
        assert layout.parity_indices.tolist() == list(range(10, 25))

    def test_kind_of(self):
        layout = single_block_layout(10, 25)
        assert layout.kind_of(3) is PacketKind.SOURCE
        assert layout.kind_of(20) is PacketKind.PARITY
        assert layout.is_source(9) and not layout.is_source(10)

    def test_kind_of_out_of_range(self):
        layout = single_block_layout(10, 25)
        with pytest.raises(IndexError):
            layout.kind_of(25)


class TestMultiBlockLayout:
    def test_global_numbering(self):
        layout = multi_block_layout([3, 3, 2], [5, 5, 4])
        assert layout.k == 8
        assert layout.n == 14
        assert layout.num_blocks == 3
        # Source packets of all blocks come first, in object order.
        assert layout.source_indices.tolist() == list(range(8))
        # Parity packets follow, block by block.
        assert layout.blocks[0].parity_indices.tolist() == [8, 9]
        assert layout.blocks[1].parity_indices.tolist() == [10, 11]
        assert layout.blocks[2].parity_indices.tolist() == [12, 13]

    def test_block_of(self):
        layout = multi_block_layout([3, 3], [5, 5])
        assert layout.block_of(0) == 0
        assert layout.block_of(4) == 1
        assert layout.block_of(6) == 0  # first parity packet of block 0
        assert layout.block_of(9) == 1

    def test_block_k_and_n(self):
        layout = multi_block_layout([3, 2], [5, 4])
        assert [block.k for block in layout.blocks] == [3, 2]
        assert [block.n for block in layout.blocks] == [5, 4]

    def test_all_indices_concatenation(self):
        layout = multi_block_layout([2, 2], [4, 4])
        assert layout.blocks[0].all_indices.tolist() == [0, 1, 4, 5]
        assert layout.blocks[1].all_indices.tolist() == [2, 3, 6, 7]

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            multi_block_layout([3], [5, 5])
        with pytest.raises(ValueError):
            multi_block_layout([], [])

    def test_block_without_parity_rejected(self):
        with pytest.raises(ValueError):
            multi_block_layout([3], [3])


class TestLayoutValidation:
    def test_inconsistent_totals_rejected(self):
        block = BlockLayout(
            block_id=0,
            source_indices=np.arange(3),
            parity_indices=np.arange(3, 5),
        )
        with pytest.raises(ValueError):
            PacketLayout(k=4, n=5, blocks=(block,))

    def test_invalid_dimensions_rejected(self):
        block = BlockLayout(
            block_id=0,
            source_indices=np.arange(3),
            parity_indices=np.arange(3, 5),
        )
        with pytest.raises(ValueError):
            PacketLayout(k=0, n=5, blocks=(block,))
