"""Tests for the parallel experiment-execution engine (``repro.runner``)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.experiments import run_experiment
from repro.core.sweep import simulate_grid, sweep_parameter
from repro.runner.cache import ResultCache, config_token, unit_key
from repro.runner.executors import ProcessExecutor, SerialExecutor, resolve_executor
from repro.runner.units import execute_unit, merge_cell, plan_units

P_VALUES = [0.0, 0.05, 0.3]
Q_VALUES = [0.2, 0.6, 1.0]


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


def _grids_equal(first, second) -> bool:
    return (
        np.array_equal(first.mean_inefficiency, second.mean_inefficiency, equal_nan=True)
        and np.array_equal(
            first.mean_received_ratio, second.mean_received_ratio, equal_nan=True
        )
        and np.array_equal(first.failure_counts, second.failure_counts)
    )


class TestUnits:
    def test_plan_one_unit_per_cell_by_default(self, config):
        cells = [((i, j), config, 0.1 * i, 0.5) for i in range(2) for j in range(3)]
        units = plan_units(cells, runs=5, base_seed=7)
        assert len(units) == 6
        assert all(unit.run_start == 0 and unit.run_stop == 5 for unit in units)

    def test_plan_run_sharding(self, config):
        units = plan_units([((0, 0), config, 0.0, 1.0)], runs=5, base_seed=0, runs_per_unit=2)
        assert [(u.run_start, u.run_stop) for u in units] == [(0, 2), (2, 4), (4, 5)]

    def test_run_sharded_merge_matches_whole_cell(self, config):
        # Sharding invariance is a guarantee of the per-run seed scheme
        # (pinned here so the test keeps meaning the same thing under a
        # REPRO_SEED_SCHEME override); under "unit" the sharding is part
        # of the stream definition -- see tests/test_seeds.py.
        whole = plan_units(
            [((1, 2), config, 0.05, 0.5)], runs=4, base_seed=3,
            seed_scheme="per-run",
        )
        sharded = plan_units(
            [((1, 2), config, 0.05, 0.5)], runs=4, base_seed=3, runs_per_unit=1,
            seed_scheme="per-run",
        )
        merged_whole = merge_cell([execute_unit(whole[0])])
        merged_sharded = merge_cell([execute_unit(unit) for unit in sharded])
        assert merged_whole == merged_sharded

    def test_all_failed_cell_is_nan(self, config):
        # 100% loss: q = 0 keeps the Gilbert channel in the bad state.
        unit = plan_units([((0, 0), config, 1.0, 0.0)], runs=2, base_seed=0)[0]
        mean_inefficiency, _received, failures = merge_cell([execute_unit(unit)])
        assert failures == 2
        assert np.isnan(mean_inefficiency)


class TestExecutors:
    def test_resolve_by_name(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process", 2), ProcessExecutor)

    def test_resolve_auto_from_workers(self):
        assert isinstance(resolve_executor(None, 4), ProcessExecutor)
        assert isinstance(resolve_executor(None, None), SerialExecutor)
        assert isinstance(resolve_executor(None, 1), SerialExecutor)

    def test_resolve_passthrough_instance(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("threads")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)


class TestParallelDeterminism:
    def test_process_grid_identical_to_serial(self, config):
        serial = simulate_grid(config, P_VALUES, Q_VALUES, runs=3, seed=7)
        parallel = simulate_grid(
            config, P_VALUES, Q_VALUES, runs=3, seed=7, executor="process", workers=4
        )
        assert _grids_equal(serial, parallel)
        assert serial.metadata == parallel.metadata

    def test_fresh_code_per_run_identical_to_serial(self, config):
        serial = simulate_grid(
            config, [0.05], [0.5], runs=3, seed=3, fresh_code_per_run=True
        )
        parallel = simulate_grid(
            config,
            [0.05],
            [0.5],
            runs=3,
            seed=3,
            fresh_code_per_run=True,
            executor="process",
            workers=2,
        )
        assert _grids_equal(serial, parallel)

    def test_run_sharding_identical_results(self, config):
        from repro.runner.engine import run_grid

        # Per-run-scheme guarantee; pinned for the same reason as
        # test_run_sharded_merge_matches_whole_cell above.
        whole = run_grid(
            config, P_VALUES, Q_VALUES, runs=4, seed=11, seed_scheme="per-run"
        )
        sharded = run_grid(
            config, P_VALUES, Q_VALUES, runs=4, seed=11, runs_per_unit=1,
            seed_scheme="per-run",
        )
        assert _grids_equal(whole, sharded)

    def test_series_parallel_identical_to_serial(self):
        def make_config(num_source):
            return SimulationConfig(
                code="ldgm-staircase",
                tx_model="rx_model_1",
                k=200,
                expansion_ratio=2.5,
                tx_options={"num_source_packets": int(num_source)},
            )

        serial = sweep_parameter(make_config, [1, 5, 20], runs=3, seed=5)
        parallel = sweep_parameter(
            make_config, [1, 5, 20], runs=3, seed=5, executor="process", workers=3
        )
        assert np.array_equal(
            serial.mean_inefficiency, parallel.mean_inefficiency, equal_nan=True
        )
        assert np.array_equal(serial.failure_counts, parallel.failure_counts)


class TestResultCache:
    def test_miss_then_hit(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = plan_units([((0, 1), config, 0.05, 0.5)], runs=2, base_seed=9)[0]
        assert cache.get(unit) is None
        result = execute_unit(unit)
        cache.put(unit, result)
        assert cache.get(unit) == result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_key_depends_on_seed_and_cell(self, config):
        base = plan_units([((0, 1), config, 0.05, 0.5)], runs=2, base_seed=9)[0]
        other_seed = plan_units([((0, 1), config, 0.05, 0.5)], runs=2, base_seed=10)[0]
        other_cell = plan_units([((1, 0), config, 0.05, 0.5)], runs=2, base_seed=9)[0]
        keys = {unit_key(base), unit_key(other_seed), unit_key(other_cell)}
        assert len(keys) == 3

    def test_key_ignores_label(self, config):
        relabelled = config.with_updates(label="fancy name")
        assert config_token(config) == config_token(relabelled)

    def test_warm_cache_run_simulates_nothing(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = simulate_grid(config, P_VALUES, Q_VALUES, runs=2, seed=1, cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.writes == len(P_VALUES) * len(Q_VALUES)

        warm_cache = ResultCache(tmp_path / "cache")

        class Exploding:
            def run(self, units, on_result):
                raise AssertionError("warm cache should not execute any unit")

        warm = simulate_grid(
            config,
            P_VALUES,
            Q_VALUES,
            runs=2,
            seed=1,
            cache=warm_cache,
            executor=Exploding(),
        )
        assert warm_cache.stats.hits == len(P_VALUES) * len(Q_VALUES)
        assert warm_cache.stats.misses == 0
        assert _grids_equal(cold, warm)

    def test_cached_results_bit_identical(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = simulate_grid(config, P_VALUES, Q_VALUES, runs=2, seed=4, cache=cache)
        cached = simulate_grid(config, P_VALUES, Q_VALUES, runs=2, seed=4, cache=cache)
        no_cache = simulate_grid(config, P_VALUES, Q_VALUES, runs=2, seed=4)
        assert _grids_equal(fresh, cached)
        assert _grids_equal(no_cache, cached)

    def test_resume_partial_cache(self, config, tmp_path):
        # Warm only one cell, then run the full grid: exactly that cell is
        # skipped and the merged grid matches an uncached run.
        cache = ResultCache(tmp_path / "cache")
        simulate_grid(config, [0.0], [0.2], runs=2, seed=1, cache=cache)
        resumed_cache = ResultCache(tmp_path / "cache")
        resumed = simulate_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=1, cache=resumed_cache
        )
        assert resumed_cache.stats.hits == 1
        assert resumed_cache.stats.writes == len(P_VALUES) * len(Q_VALUES) - 1
        assert _grids_equal(resumed, simulate_grid(config, P_VALUES, Q_VALUES, runs=2, seed=1))

    def test_cache_accepts_directory_path(self, config, tmp_path):
        simulate_grid(config, [0.0], [1.0], runs=1, seed=0, cache=str(tmp_path / "c"))
        assert ResultCache(tmp_path / "c").__len__() == 1

    def test_corrupt_entry_is_a_miss(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = plan_units([((0, 0), config, 0.0, 1.0)], runs=1, base_seed=0)[0]
        cache.put(unit, execute_unit(unit))
        path = cache._path(unit_key(unit))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(unit) is None

    def test_clear(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        simulate_grid(config, [0.0], [1.0], runs=1, seed=0, cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestExperimentsThroughRunner:
    def test_tiny_fig08_warm_cache_no_resimulation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_experiment("fig08", scale="tiny", seed=0, runs=2, cache=cache)
        writes = cache.stats.writes
        assert writes > 0 and cache.stats.hits == 0

        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_experiment("fig08", scale="tiny", seed=0, runs=2, cache=warm_cache)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.writes == 0
        assert warm_cache.stats.hits == writes
        for label in cold:
            assert _grids_equal(cold[label], warm[label])

    def test_workers_kwarg_selects_process_pool(self):
        serial = run_experiment("fig07", scale="tiny", seed=1, runs=2)
        parallel = run_experiment("fig07", scale="tiny", seed=1, runs=2, workers=2)
        for label in serial:
            assert _grids_equal(serial[label], parallel[label])

    def test_progress_factory_called_per_config(self):
        seen = []

        def factory(index):
            seen.append(index)
            return None

        run_experiment("fig07", scale="tiny", seed=0, runs=1, progress_factory=factory)
        assert seen == [1]


class TestProgress:
    def test_serial_progress_order_preserved(self, config):
        calls = []
        simulate_grid(
            config,
            [0.0, 0.1],
            [0.5],
            runs=1,
            seed=0,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]

    def test_parallel_progress_counts_all_cells(self, config):
        calls = []
        simulate_grid(
            config,
            [0.0, 0.1],
            [0.2, 0.5],
            runs=1,
            seed=0,
            executor="process",
            workers=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert sorted(calls) == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_cached_cells_count_as_progress(self, config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        simulate_grid(config, [0.0, 0.1], [0.5], runs=1, seed=0, cache=cache)
        calls = []
        simulate_grid(
            config,
            [0.0, 0.1],
            [0.5],
            runs=1,
            seed=0,
            cache=cache,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]


class TestCLI:
    def _run(self, *argv, cwd=None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
        )

    def test_list_experiments_smoke(self):
        result = self._run("list-experiments")
        assert result.returncode == 0
        assert "fig09" in result.stdout
        assert "table5" in result.stdout
        assert "paper" in result.stdout

    def test_run_and_resume(self, tmp_path):
        argv = (
            "run",
            "fig07",
            "--scale",
            "tiny",
            "--runs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--quiet",
        )
        cold = self._run(*argv, cwd=tmp_path)
        assert cold.returncode == 0, cold.stderr
        assert "0 hits" in cold.stdout
        warm = self._run(*argv, cwd=tmp_path)
        assert warm.returncode == 0, warm.stderr
        assert "0 misses" in warm.stdout

    def test_run_writes_csv(self, tmp_path):
        result = self._run(
            "run",
            "fig07",
            "--scale",
            "tiny",
            "--runs",
            "1",
            "--no-cache",
            "--csv-dir",
            str(tmp_path / "csv"),
            "--quiet",
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr
        written = list((tmp_path / "csv").glob("*.csv"))
        assert len(written) == 1

    def test_unknown_experiment_fails_cleanly(self):
        result = self._run("run", "fig99", "--quiet")
        assert result.returncode == 2
        assert "unknown experiment" in result.stderr

    def test_cache_info_and_clear(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._run(
            "run", "fig07", "--scale", "tiny", "--runs", "1",
            "--cache-dir", cache_dir, "--quiet", cwd=tmp_path,
        )
        info = self._run("cache", "info", "--cache-dir", cache_dir)
        assert info.returncode == 0
        assert "entries" in info.stdout
        cleared = self._run("cache", "clear", "--cache-dir", cache_dir)
        assert cleared.returncode == 0
        info_after = self._run("cache", "info", "--cache-dir", cache_dir)
        assert "0 entries" in info_after.stdout
