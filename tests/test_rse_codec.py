"""Unit tests for the single-block Reed-Solomon codec."""

import numpy as np
import pytest

from repro.fec.rse.codec import ReedSolomonBlockCodec


def make_payloads(rng, count, length=32):
    return rng.integers(0, 256, size=(count, length)).astype(np.uint8)


class TestEncoding:
    def test_systematic_prefix(self, rng):
        codec = ReedSolomonBlockCodec(5, 12)
        source = make_payloads(rng, 5)
        encoded = codec.encode(source)
        assert encoded.shape == (12, 32)
        assert np.array_equal(encoded[:5], source)

    def test_scalar_symbols(self, rng):
        codec = ReedSolomonBlockCodec(4, 8)
        source = rng.integers(0, 256, size=4).astype(np.uint8)
        encoded = codec.encode(source)
        assert encoded.shape == (8,)
        assert np.array_equal(encoded[:4], source)

    def test_wrong_source_count_rejected(self, rng):
        codec = ReedSolomonBlockCodec(5, 12)
        with pytest.raises(ValueError):
            codec.encode(make_payloads(rng, 4))


class TestDecoding:
    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_decode_from_parity_only(self, rng, construction):
        codec = ReedSolomonBlockCodec(5, 12, construction=construction)
        source = make_payloads(rng, 5)
        encoded = codec.encode(source)
        indices = list(range(5, 10))
        recovered = codec.decode(indices, encoded[indices])
        assert np.array_equal(recovered, source)

    def test_decode_from_random_subsets(self, rng):
        codec = ReedSolomonBlockCodec(6, 14)
        source = make_payloads(rng, 6)
        encoded = codec.encode(source)
        for _ in range(20):
            indices = rng.choice(14, size=6, replace=False)
            recovered = codec.decode(indices, encoded[indices])
            assert np.array_equal(recovered, source)

    def test_decode_with_extra_symbols(self, rng):
        codec = ReedSolomonBlockCodec(4, 10)
        source = make_payloads(rng, 4)
        encoded = codec.encode(source)
        indices = [9, 2, 7, 0, 5, 3]
        recovered = codec.decode(indices, encoded[indices])
        assert np.array_equal(recovered, source)

    def test_too_few_symbols_rejected(self, rng):
        codec = ReedSolomonBlockCodec(5, 12)
        source = make_payloads(rng, 5)
        encoded = codec.encode(source)
        with pytest.raises(ValueError):
            codec.decode([0, 1, 2, 3], encoded[[0, 1, 2, 3]])

    def test_duplicate_indices_rejected(self, rng):
        codec = ReedSolomonBlockCodec(3, 6)
        source = make_payloads(rng, 3)
        encoded = codec.encode(source)
        with pytest.raises(ValueError):
            codec.decode([0, 0, 1], encoded[[0, 0, 1]])

    def test_out_of_range_index_rejected(self, rng):
        codec = ReedSolomonBlockCodec(3, 6)
        source = make_payloads(rng, 3)
        encoded = codec.encode(source)
        with pytest.raises(ValueError):
            codec.decode([0, 1, 6], encoded[[0, 1, 2]])


class TestConstruction:
    def test_dimension_limits(self):
        with pytest.raises(ValueError):
            ReedSolomonBlockCodec(0, 5)
        with pytest.raises(ValueError):
            ReedSolomonBlockCodec(5, 5)
        with pytest.raises(ValueError):
            ReedSolomonBlockCodec(5, 300)

    def test_largest_block_supported(self, rng):
        codec = ReedSolomonBlockCodec(128, 256)
        source = make_payloads(rng, 128, length=8)
        encoded = codec.encode(source)
        indices = rng.choice(256, size=128, replace=False)
        assert np.array_equal(codec.decode(indices, encoded[indices]), source)
