"""Unit tests for the Gilbert (two-state Markov) channel model."""

import numpy as np
import pytest

from repro.channel import GilbertChannel
from repro.channel.gilbert import PAPER_GRID_PERCENT, paper_grid


class TestParameters:
    def test_global_loss_probability_formula(self):
        channel = GilbertChannel(0.1, 0.3)
        assert channel.global_loss_probability == pytest.approx(0.1 / 0.4)

    def test_no_loss_channel(self):
        channel = GilbertChannel(0.0, 0.5)
        assert channel.global_loss_probability == 0.0

    def test_p_and_q_zero_treated_as_no_loss(self):
        channel = GilbertChannel(0.0, 0.0)
        assert channel.global_loss_probability == 0.0

    def test_all_loss_channel(self):
        channel = GilbertChannel(0.3, 0.0)
        assert channel.global_loss_probability == 1.0

    def test_mean_burst_and_gap_length(self):
        channel = GilbertChannel(0.1, 0.25)
        assert channel.mean_burst_length == pytest.approx(4.0)
        assert channel.mean_gap_length == pytest.approx(10.0)
        assert GilbertChannel(0.1, 0.0).mean_burst_length == float("inf")
        assert GilbertChannel(0.0, 0.1).mean_gap_length == float("inf")

    def test_memoryless_detection(self):
        assert GilbertChannel(0.3, 0.7).is_memoryless
        assert not GilbertChannel(0.3, 0.5).is_memoryless

    def test_stationary_distribution_sums_to_one(self):
        channel = GilbertChannel(0.2, 0.6)
        no_loss, loss = channel.stationary_distribution
        assert no_loss + loss == pytest.approx(1.0)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            GilbertChannel(-0.1, 0.5)
        with pytest.raises(ValueError):
            GilbertChannel(0.5, 1.5)

    def test_paper_grid(self):
        p_values, q_values = paper_grid()
        assert len(p_values) == len(PAPER_GRID_PERCENT) == 14
        assert p_values[0] == 0.0 and p_values[-1] == 1.0
        assert p_values == q_values


class TestLossMask:
    def test_length_and_dtype(self, rng):
        mask = GilbertChannel(0.1, 0.5).loss_mask(1000, rng)
        assert mask.shape == (1000,)
        assert mask.dtype == bool

    def test_zero_count(self, rng):
        assert GilbertChannel(0.1, 0.5).loss_mask(0, rng).size == 0

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            GilbertChannel(0.1, 0.5).loss_mask(-1, rng)

    def test_perfect_channel_loses_nothing(self, rng):
        assert not GilbertChannel(0.0, 0.5).loss_mask(5000, rng).any()

    def test_absorbing_loss_state_loses_everything(self, rng):
        assert GilbertChannel(0.4, 0.0).loss_mask(5000, rng).all()

    def test_empirical_loss_rate_matches_stationary(self, rng):
        channel = GilbertChannel(0.05, 0.45)
        mask = channel.loss_mask(200_000, rng)
        empirical = mask.mean()
        assert empirical == pytest.approx(channel.global_loss_probability, abs=0.01)

    def test_empirical_burst_length(self, rng):
        channel = GilbertChannel(0.02, 0.2)
        mask = channel.loss_mask(300_000, rng)
        # Measure mean length of runs of losses.
        changes = np.diff(mask.astype(np.int8))
        starts = np.count_nonzero(changes == 1) + int(mask[0])
        bursts = mask.sum() / max(starts, 1)
        assert bursts == pytest.approx(channel.mean_burst_length, rel=0.15)

    def test_bernoulli_special_case_is_iid(self, rng):
        channel = GilbertChannel(0.3, 0.7)
        mask = channel.loss_mask(200_000, rng)
        # Lag-1 autocorrelation of an IID sequence is close to zero.
        x = mask.astype(float)
        x -= x.mean()
        autocorrelation = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert abs(autocorrelation) < 0.02

    def test_bursty_channel_has_positive_autocorrelation(self, rng):
        channel = GilbertChannel(0.05, 0.2)
        mask = channel.loss_mask(200_000, rng)
        x = mask.astype(float)
        x -= x.mean()
        autocorrelation = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert autocorrelation > 0.4

    def test_deterministic_given_generator_seed(self):
        channel = GilbertChannel(0.1, 0.4)
        first = channel.loss_mask(1000, np.random.default_rng(7))
        second = channel.loss_mask(1000, np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_alternating_channel(self, rng):
        # p = q = 1 alternates states deterministically after the start.
        mask = GilbertChannel(1.0, 1.0).loss_mask(1000, rng)
        transitions = np.count_nonzero(np.diff(mask.astype(np.int8)) != 0)
        assert transitions == 999

    def test_transmit_filters_schedule(self, rng):
        channel = GilbertChannel(0.5, 0.5)
        schedule = np.arange(2000)
        received = channel.transmit(schedule, rng)
        assert received.size < schedule.size
        assert np.all(np.diff(received) > 0)  # order preserved

    def test_reception_mask_is_complement(self):
        channel = GilbertChannel(0.2, 0.4)
        loss = channel.loss_mask(500, np.random.default_rng(3))
        received = channel.reception_mask(500, np.random.default_rng(3))
        assert np.array_equal(received, ~loss)

    def test_repr(self):
        assert "p=0.1" in repr(GilbertChannel(0.1, 0.2))
