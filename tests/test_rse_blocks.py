"""Unit tests for the RSE block partitioner."""

import pytest

from repro.fec.rse.blocks import MAX_BLOCK_SIZE_GF256, partition_object


class TestPartitionObject:
    def test_single_block_when_small(self):
        partition = partition_object(100, 250)
        assert partition.num_blocks == 1
        assert partition.block_ks == (100,)
        assert partition.block_ns == (250,)

    def test_totals_preserved(self):
        for k, ratio in [(1000, 1.5), (1000, 2.5), (20000, 2.5), (777, 2.0), (129, 2.0)]:
            n = int(round(k * ratio))
            partition = partition_object(k, n)
            assert partition.k == k
            assert partition.n == n

    def test_paper_example_n_equals_2k(self):
        # Paper, section 2.2: with n = 2k the blocks hold at most 128 source
        # packets (256 encoding packets) over GF(2^8).
        partition = partition_object(1280, 2560)
        assert partition.max_block_n <= MAX_BLOCK_SIZE_GF256
        assert max(partition.block_ks) <= 128

    def test_block_sizes_balanced(self):
        partition = partition_object(1000, 2500)
        assert max(partition.block_ks) - min(partition.block_ks) <= 1

    def test_no_block_exceeds_field_limit(self):
        for k in (500, 999, 5000, 20000):
            partition = partition_object(k, int(k * 2.5))
            assert partition.max_block_n <= MAX_BLOCK_SIZE_GF256

    def test_every_block_has_parity(self):
        partition = partition_object(5000, 7500)
        for block_k, block_n in zip(partition.block_ks, partition.block_ns):
            assert block_n > block_k

    def test_custom_max_block_size(self):
        partition = partition_object(100, 150, max_block_size=30)
        assert partition.max_block_n <= 30
        assert partition.num_blocks >= 5

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            partition_object(10, 10)
        with pytest.raises(ValueError):
            partition_object(10, 20, max_block_size=500)
        with pytest.raises(TypeError):
            partition_object("10", 20)

    def test_expansion_ratio_too_small_rejected(self):
        # Fewer parity packets than blocks cannot give every block parity.
        with pytest.raises(ValueError):
            partition_object(2000, 2001)
