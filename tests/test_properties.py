"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel import GilbertChannel
from repro.channel.limits import is_decodable, minimum_q_for_decoding
from repro.fec import make_code
from repro.fec.rse.blocks import MAX_BLOCK_SIZE_GF256, partition_object
from repro.galois.field import gf_add, gf_div, gf_inv, gf_mul
from repro.galois.matrix import gf_mat_inv, gf_mat_mul, gf_mat_rank, gf_identity
from repro.scheduling import make_tx_model

# Element and small-array strategies for GF(2^8).
field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestGaloisFieldProperties:
    @common_settings
    @given(a=field_elements, b=field_elements, c=field_elements)
    def test_field_axioms(self, a, b, c):
        a8, b8, c8 = np.uint8(a), np.uint8(b), np.uint8(c)
        # Commutativity.
        assert gf_add(a8, b8) == gf_add(b8, a8)
        assert gf_mul(a8, b8) == gf_mul(b8, a8)
        # Associativity.
        assert int(gf_mul(gf_mul(a8, b8), c8)) == int(gf_mul(a8, gf_mul(b8, c8)))
        # Distributivity.
        assert int(gf_mul(a8, gf_add(b8, c8))) == int(
            gf_add(gf_mul(a8, b8), gf_mul(a8, c8))
        )
        # Additive inverse (characteristic 2).
        assert int(gf_add(a8, a8)) == 0

    @common_settings
    @given(a=nonzero_elements)
    def test_multiplicative_inverse(self, a):
        a8 = np.uint8(a)
        assert int(gf_mul(a8, gf_inv(a8))) == 1

    @common_settings
    @given(a=field_elements, b=nonzero_elements)
    def test_division_is_multiplication_by_inverse(self, a, b):
        a8, b8 = np.uint8(a), np.uint8(b)
        assert int(gf_div(a8, b8)) == int(gf_mul(a8, gf_inv(b8)))


class TestGaloisMatrixProperties:
    @common_settings
    @given(
        size=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_inverse_roundtrip_when_full_rank(self, size, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(size, size)).astype(np.uint8)
        if gf_mat_rank(matrix) < size:
            return  # singular draw; property only applies to invertible matrices
        inverse = gf_mat_inv(matrix)
        assert np.array_equal(gf_mat_mul(matrix, inverse), gf_identity(size))


class TestPartitionProperties:
    @common_settings
    @given(
        k=st.integers(min_value=2, max_value=5000),
        ratio_percent=st.integers(min_value=120, max_value=400),
    )
    def test_partition_invariants(self, k, ratio_percent):
        n = int(round(k * ratio_percent / 100))
        if n <= k:
            return
        try:
            partition = partition_object(k, n)
        except ValueError:
            # Legitimately impossible configurations (e.g. not enough parity
            # packets to give one to every block) are allowed to raise.
            return
        assert partition.k == k
        assert partition.n == n
        assert partition.max_block_n <= MAX_BLOCK_SIZE_GF256
        assert max(partition.block_ks) - min(partition.block_ks) <= 1
        assert all(block_n > block_k for block_k, block_n in zip(partition.block_ks, partition.block_ns))


class TestGilbertProperties:
    @common_settings
    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        count=st.integers(min_value=0, max_value=2000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_loss_mask_shape_and_extremes(self, p, q, count, seed):
        channel = GilbertChannel(p, q)
        mask = channel.loss_mask(count, np.random.default_rng(seed))
        assert mask.shape == (count,)
        assert 0.0 <= channel.global_loss_probability <= 1.0
        if p == 0.0:
            assert not mask.any()
        elif q == 0.0:
            assert mask.all()

    @common_settings
    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        ratio=st.sampled_from([1.5, 2.0, 2.5, 3.0]),
    )
    def test_decodability_limit_consistency(self, p, ratio):
        limit = minimum_q_for_decoding(p, ratio)
        if limit <= 1.0:
            assert is_decodable(p, min(1.0, limit), ratio)
        if limit > 0.0 and np.isfinite(limit):
            below = max(0.0, limit - 0.05)
            if below < limit:
                assert not is_decodable(p, below, ratio) or np.isclose(below, limit)


class TestSchedulerProperties:
    @common_settings
    @given(
        k=st.integers(min_value=10, max_value=300),
        ratio=st.sampled_from([1.5, 2.0, 2.5]),
        tx_index=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_full_schedules_are_permutations(self, k, ratio, tx_index, seed):
        code = make_code("ldgm-staircase", k=k, expansion_ratio=ratio, seed=0)
        model = make_tx_model(f"tx_model_{tx_index}")
        schedule = model.schedule(code.layout, np.random.default_rng(seed))
        assert sorted(schedule.tolist()) == list(range(code.n))

    @common_settings
    @given(
        k=st.integers(min_value=20, max_value=300),
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_tx_model_6_subset_properties(self, k, fraction, seed):
        code = make_code("ldgm-staircase", k=k, expansion_ratio=2.5, seed=0)
        model = make_tx_model("tx_model_6", source_fraction=fraction)
        schedule = model.schedule(code.layout, np.random.default_rng(seed))
        source_sent = [i for i in schedule.tolist() if i < k]
        parity_sent = sorted(i for i in schedule.tolist() if i >= k)
        assert len(set(source_sent)) == len(source_sent)
        assert len(source_sent) == int(round(fraction * k))
        assert parity_sent == list(range(k, code.n))


class TestCodecProperties:
    @common_settings
    @given(
        k=st.integers(min_value=5, max_value=60),
        ratio=st.sampled_from([1.5, 2.0, 2.5]),
        payload_len=st.integers(min_value=1, max_value=64),
        code_name=st.sampled_from(["rse", "ldgm-staircase", "ldgm-triangle"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_order_roundtrip(self, k, ratio, payload_len, code_name, seed):
        """Decoding from every packet, in any order, always recovers the object."""
        rng = np.random.default_rng(seed)
        code = make_code(code_name, k=k, expansion_ratio=ratio, seed=seed)
        payloads = [bytes(rng.integers(0, 256, size=payload_len, dtype=np.uint8)) for _ in range(k)]
        encoded = code.new_encoder().encode(payloads)
        assert encoded[:k] == payloads  # systematic property
        decoder = code.new_decoder()
        for index in rng.permutation(code.n):
            if decoder.add_packet(int(index), encoded[int(index)]):
                break
        assert decoder.is_complete
        assert decoder.source_payloads() == payloads

    @common_settings
    @given(
        k=st.integers(min_value=5, max_value=60),
        ratio=st.sampled_from([1.5, 2.5]),
        code_name=st.sampled_from(["rse", "ldgm-staircase", "ldgm-triangle"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_symbolic_decoder_needs_at_least_k_packets(self, k, ratio, code_name, seed):
        rng = np.random.default_rng(seed)
        code = make_code(code_name, k=k, expansion_ratio=ratio, seed=seed)
        decoder = code.new_symbolic_decoder()
        needed = decoder.add_packets(int(i) for i in rng.permutation(code.n))
        assert decoder.is_complete
        assert k <= needed <= code.n
        assert decoder.decoded_source_count == k
