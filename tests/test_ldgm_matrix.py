"""Unit tests for LDGM parity-check-matrix construction."""

import numpy as np
import pytest

from repro.fec.ldgm.matrix import (
    DEFAULT_LEFT_DEGREE,
    LDGMVariant,
    ParityCheckMatrix,
    build_parity_check_matrix,
)


class TestDimensions:
    @pytest.mark.parametrize("variant", list(LDGMVariant))
    def test_shapes(self, variant):
        matrix = build_parity_check_matrix(100, 250, variant, seed=0)
        assert matrix.k == 100 and matrix.n == 250
        assert matrix.num_checks == 150
        assert len(matrix.source_cols) == 150
        assert len(matrix.parity_cols) == 150

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            build_parity_check_matrix(100, 100, "staircase")
        with pytest.raises(ValueError):
            build_parity_check_matrix(0, 10, "staircase")

    def test_string_variant_accepted(self):
        matrix = build_parity_check_matrix(50, 100, "triangle", seed=1)
        assert matrix.variant is LDGMVariant.TRIANGLE

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_parity_check_matrix(50, 100, "diagonal")


class TestLeftPart:
    def test_every_source_column_has_left_degree_edges(self):
        matrix = build_parity_check_matrix(200, 500, "staircase", seed=3)
        degrees = matrix.column_degrees()[:200]
        assert np.all(degrees == DEFAULT_LEFT_DEGREE)

    def test_custom_left_degree(self):
        matrix = build_parity_check_matrix(100, 250, "staircase", left_degree=5, seed=3)
        degrees = matrix.column_degrees()[:100]
        assert np.all(degrees == 5)

    def test_left_degree_capped_for_tiny_codes(self):
        # Only 2 check nodes exist, so the degree cannot exceed 2.
        matrix = build_parity_check_matrix(10, 12, "staircase", seed=0)
        degrees = matrix.column_degrees()[:10]
        assert np.all(degrees <= 2)

    def test_no_duplicate_edges_within_a_column(self):
        matrix = build_parity_check_matrix(300, 750, "triangle", seed=7)
        membership = [set() for _ in range(matrix.n)]
        for row in range(matrix.num_checks):
            for col in matrix.source_cols[row]:
                assert row not in membership[col], "duplicate edge"
                membership[col].add(row)

    def test_check_rows_balanced(self):
        matrix = build_parity_check_matrix(600, 1500, "staircase", seed=11)
        row_degrees = np.array([cols.size for cols in matrix.source_cols])
        # Balanced pool construction keeps source-edge counts within a small band.
        assert row_degrees.min() >= 1
        assert row_degrees.max() - row_degrees.min() <= 3

    def test_reproducible_for_same_seed(self):
        first = build_parity_check_matrix(100, 250, "staircase", seed=42)
        second = build_parity_check_matrix(100, 250, "staircase", seed=42)
        for row in range(first.num_checks):
            assert np.array_equal(first.source_cols[row], second.source_cols[row])

    def test_different_seeds_differ(self):
        first = build_parity_check_matrix(100, 250, "staircase", seed=1)
        second = build_parity_check_matrix(100, 250, "staircase", seed=2)
        assert any(
            not np.array_equal(first.source_cols[row], second.source_cols[row])
            for row in range(first.num_checks)
        )


class TestRightPart:
    def test_ldgm_identity(self):
        matrix = build_parity_check_matrix(50, 100, "ldgm", seed=0)
        for row in range(matrix.num_checks):
            assert matrix.parity_cols[row].tolist() == [50 + row]

    def test_staircase_dual_diagonal(self):
        matrix = build_parity_check_matrix(50, 100, "staircase", seed=0)
        assert matrix.parity_cols[0].tolist() == [50]
        for row in range(1, matrix.num_checks):
            assert matrix.parity_cols[row].tolist() == [50 + row - 1, 50 + row]

    def test_triangle_adds_one_entry_below_staircase(self):
        matrix = build_parity_check_matrix(50, 150, "triangle", seed=0)
        assert matrix.parity_cols[0].tolist() == [50]
        assert matrix.parity_cols[1].tolist() == [50, 51]
        for row in range(2, matrix.num_checks):
            cols = matrix.parity_cols[row].tolist()
            assert 50 + row in cols and 50 + row - 1 in cols
            extras = [c for c in cols if c < 50 + row - 1]
            assert len(extras) == 1
            assert 50 <= extras[0] <= 50 + row - 2

    def test_triangle_denser_than_staircase(self):
        staircase = build_parity_check_matrix(100, 250, "staircase", seed=5)
        triangle = build_parity_check_matrix(100, 250, "triangle", seed=5)
        assert triangle.num_edges > staircase.num_edges


class TestAccessors:
    def test_row_columns_concatenates(self):
        matrix = build_parity_check_matrix(20, 50, "staircase", seed=0)
        row = matrix.row_columns(3)
        assert set(matrix.source_cols[3]) <= set(row.tolist())
        assert set(matrix.parity_cols[3]) <= set(row.tolist())

    def test_column_adjacency_consistent_with_rows(self):
        matrix = build_parity_check_matrix(40, 100, "triangle", seed=0)
        indptr, rows = matrix.column_adjacency()
        assert indptr.shape == (matrix.n + 1,)
        assert rows.size == matrix.num_edges
        # Rebuild membership from the adjacency and compare with the rows.
        for node in range(matrix.n):
            adjacent = set(rows[indptr[node] : indptr[node + 1]].tolist())
            expected = {
                row
                for row in range(matrix.num_checks)
                if node in matrix.row_columns(row)
            }
            assert adjacent == expected

    def test_adjacency_is_cached(self):
        matrix = build_parity_check_matrix(20, 50, "staircase", seed=0)
        first = matrix.column_adjacency()
        second = matrix.column_adjacency()
        assert first[0] is second[0] and first[1] is second[1]

    def test_to_dense_matches_sparse(self):
        matrix = build_parity_check_matrix(15, 40, "triangle", seed=0)
        dense = matrix.to_dense()
        assert dense.shape == (25, 40)
        assert dense.sum() == matrix.num_edges

    def test_density(self):
        matrix = build_parity_check_matrix(100, 250, "staircase", seed=0)
        assert 0 < matrix.density < 0.1
