"""Unit tests for the symbolic (index-only) LDGM peeling decoder."""

import numpy as np
import pytest

from repro.fec import LDGMStaircaseCode, LDGMTriangleCode
from repro.fec.ldgm.symbolic import LDGMSymbolicDecoder


class TestBasics:
    def test_all_source_packets_complete_immediately(self):
        code = LDGMStaircaseCode(k=50, n=125, seed=0)
        decoder = code.new_symbolic_decoder()
        consumed = decoder.add_packets(range(50))
        assert decoder.is_complete
        assert consumed == 50
        assert decoder.decoded_source_count == 50

    def test_duplicates_do_not_advance_decoding(self):
        code = LDGMStaircaseCode(k=20, n=50, seed=0)
        decoder = code.new_symbolic_decoder()
        for _ in range(100):
            decoder.add_packet(0)
        assert decoder.decoded_source_count == 1
        assert not decoder.is_complete

    def test_out_of_range_rejected(self):
        code = LDGMStaircaseCode(k=20, n=50, seed=0)
        decoder = code.new_symbolic_decoder()
        with pytest.raises(IndexError):
            decoder.add_packet(50)

    def test_parity_only_is_insufficient_at_ratio_1_5(self):
        code = LDGMStaircaseCode(k=30, n=45, seed=1)
        decoder = code.new_symbolic_decoder()
        decoder.add_packets(range(30, 45))
        assert not decoder.is_complete

    def test_known_packet_count_tracks_recovered_parity(self):
        code = LDGMStaircaseCode(k=30, n=75, seed=1)
        decoder = code.new_symbolic_decoder()
        decoder.add_packets(range(30))
        assert decoder.is_complete
        # Receiving every source packet also lets the decoder reconstruct
        # parity packets via the check equations.
        assert decoder.known_packet_count >= 30


class TestPeeling:
    def test_single_missing_source_recovered_from_parity(self):
        """Missing one source packet must be recoverable via one of its checks."""
        code = LDGMStaircaseCode(k=40, n=100, seed=2)
        decoder = code.new_symbolic_decoder()
        missing = 17
        for index in range(100):
            if index == missing:
                continue
            if decoder.add_packet(index):
                break
        assert decoder.is_complete

    def test_handful_of_missing_sources_recovered(self, rng):
        code = LDGMTriangleCode(k=100, n=250, seed=3)
        missing = set(rng.choice(100, size=10, replace=False).tolist())
        decoder = code.new_symbolic_decoder()
        for index in range(250):
            if index in missing:
                continue
            if decoder.add_packet(index):
                break
        assert decoder.is_complete

    def test_agrees_with_payload_decoder(self, rng):
        """The symbolic and payload decoders must need the same packets."""
        code = LDGMStaircaseCode(k=60, n=150, seed=4)
        payloads = [bytes(rng.integers(0, 256, size=8, dtype=np.uint8)) for _ in range(60)]
        encoded = code.new_encoder().encode(payloads)
        order = [int(i) for i in rng.permutation(150)]
        symbolic = code.new_symbolic_decoder()
        payload_decoder = code.new_decoder()
        symbolic_needed = symbolic.add_packets(order)
        payload_needed = None
        for count, index in enumerate(order, start=1):
            if payload_decoder.add_packet(index, encoded[index]):
                payload_needed = count
                break
        assert symbolic.is_complete and payload_decoder.is_complete
        assert symbolic_needed == payload_needed

    def test_inefficiency_is_reasonable_for_random_reception(self, rng):
        """Sanity bound: LDGM Staircase decodes well below the expansion ratio."""
        code = LDGMStaircaseCode(k=400, n=1000, seed=5)
        ratios = []
        for _ in range(5):
            decoder = code.new_symbolic_decoder()
            order = [int(i) for i in rng.permutation(1000)]
            needed = decoder.add_packets(order)
            assert decoder.is_complete
            ratios.append(needed / 400)
        assert 1.0 <= np.mean(ratios) < 1.4

    def test_decoder_is_fresh_per_instance(self):
        code = LDGMStaircaseCode(k=20, n=50, seed=6)
        first = code.new_symbolic_decoder()
        first.add_packets(range(20))
        second = code.new_symbolic_decoder()
        assert first.is_complete and not second.is_complete

    def test_direct_construction_from_matrix(self):
        code = LDGMStaircaseCode(k=20, n=50, seed=6)
        decoder = LDGMSymbolicDecoder(code.matrix)
        decoder.add_packets(range(20))
        assert decoder.is_complete
