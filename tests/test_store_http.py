"""Tests for the remote result store (``repro.store.http`` + ``server``).

The backend contract classes are inherited from ``test_store`` with the
``store`` fixture overridden to an ``http:`` client fronting an
in-process :class:`StoreServer`, so the remote path satisfies exactly the
same contract as the local backends.  On top of that: server-clock lease
arbitration under skewed clocks, transient/permanent error mapping,
write-behind spool reconciliation, ``chaos+http:`` determinism, and
killed-server / killed-worker convergence mirroring ``test_fleet``.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import test_store as store_suite
from repro.core.config import SimulationConfig
from repro.resilience import (
    FailurePolicy,
    StoreUnavailableError,
    UnitFailure,
    quarantine_entries,
    write_quarantine,
)
from repro.runner.engine import run_grid
from repro.runner.fleet import FleetRunner
from repro.runner.units import execute_unit, plan_units
from repro.store import (
    HttpStore,
    HttpStoreError,
    MemoryStore,
    SqliteStore,
    StoreServer,
    resolve_store,
    unit_key,
)

P_VALUES = [0.0, 0.05]
Q_VALUES = [0.5, 1.0]


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


_units = store_suite._units


@pytest.fixture
def inner(tmp_path):
    store = SqliteStore(tmp_path / "served.db")
    yield store
    store.close()


@pytest.fixture
def server(inner):
    server = StoreServer(inner, port=0).start()
    yield server
    server.shutdown()


@pytest.fixture
def http_store(server):
    store = resolve_store(f"http:127.0.0.1:{server.port}")
    yield store
    store.close()


def _restart(server: StoreServer) -> StoreServer:
    """A new server on the same port and inner store (crash + recovery)."""
    return StoreServer(server.store, host=server.host, port=server.port).start()


class TestHttpStoreContract(store_suite.TestStoreContract):
    @pytest.fixture
    def store(self, http_store):
        return http_store


class TestHttpLeaseContract(store_suite.TestLeaseContract):
    @pytest.fixture
    def store(self, http_store):
        return http_store


class TestRegistryAndParsing:
    def test_resolve_http_uri(self, server):
        store = resolve_store(f"http:127.0.0.1:{server.port}")
        assert isinstance(store, HttpStore)
        assert store.uri() == f"http:127.0.0.1:{server.port}"
        assert store.supports_leases

    @pytest.mark.parametrize(
        "location", ["", "hostonly", "host:", ":8737", "host:notaport"]
    )
    def test_bad_locations_fail_fast(self, location):
        with pytest.raises(ValueError):
            resolve_store(f"http:{location}")

    def test_unknown_option_fails_fast(self):
        with pytest.raises(ValueError, match="unknown http store option"):
            resolve_store("http:127.0.0.1:8737?frobnicate=1")

    def test_health_reports_inner_backend(self, http_store):
        health = http_store.health()
        assert health["ok"] is True
        assert health["backend"] == "sqlite"
        assert health["leases"] is True
        assert abs(health["clock"] - time.time()) < 30.0


class TestErrorMapping:
    def test_connection_refused_is_transient_and_actionable(self):
        store = resolve_store("http:127.0.0.1:9")  # nothing listens there
        with pytest.raises(StoreUnavailableError) as excinfo:
            store.get_record("x")
        message = str(excinfo.value)
        assert "http://127.0.0.1:9" in message
        assert "cache serve" in message

    def test_server_5xx_is_transient(self, inner, server):
        # Close the inner store under the server: every op now explodes
        # server-side, which must surface as a *transient* 5xx -- exactly
        # what a worker sees while a crashed server restarts.
        store = resolve_store(f"http:127.0.0.1:{server.port}")
        inner.close()
        with pytest.raises(StoreUnavailableError, match="HTTP 5"):
            len(store)

    def test_unknown_endpoint_is_permanent(self, http_store):
        with pytest.raises(HttpStoreError, match="HTTP 404"):
            http_store._request("POST", "/no_such_endpoint", {})

    def test_token_mismatch_is_permanent(self, tmp_path):
        inner = MemoryStore()
        with StoreServer(inner, port=0, token="s3cret") as server:
            good = resolve_store(f"http:127.0.0.1:{server.port}?token=s3cret")
            assert len(good) == 0
            bad = resolve_store(f"http:127.0.0.1:{server.port}")
            with pytest.raises(HttpStoreError, match="HTTP 401"):
                len(bad)
            wrong = resolve_store(f"http:127.0.0.1:{server.port}?token=nope")
            with pytest.raises(HttpStoreError, match="HTTP 401"):
                len(wrong)


class TestServerSideArbitration:
    """The server's clock decides lease expiry, never the client's."""

    class _SkewableStore(MemoryStore):
        def __init__(self):
            super().__init__()
            self.offset = 0.0

        def _now(self):
            return time.time() + self.offset

    def test_claim_sends_durations_not_timestamps(self, http_store):
        sent = []
        original = http_store._request

        def recording(method, path, payload=None):
            sent.append((path, payload))
            return original(method, path, payload)

        http_store._request = recording
        http_store.claim("k1", "alice", ttl=60.0)
        http_store.heartbeat(["k1"], "alice", ttl=60.0)
        claim_body = dict(sent[0][1])
        beat_body = dict(sent[1][1])
        # The wire protocol has no field for an absolute expiry: however
        # skewed the client's wall clock, it can only ever ask for a TTL
        # duration, and the server computes `its own _now() + ttl`.
        assert claim_body == {"key": "k1", "worker": "alice", "ttl": 60.0}
        assert beat_body == {"keys": ["k1"], "worker": "alice", "ttl": 60.0}

    def test_skewed_clients_cannot_cause_premature_takeover(self):
        inner = self._SkewableStore()
        with StoreServer(inner, port=0) as server:
            alice = resolve_store(f"http:127.0.0.1:{server.port}")
            bob = resolve_store(f"http:127.0.0.1:{server.port}")
            assert alice.claim("k1", "alice", ttl=60.0)
            # However far ahead bob *believes* the time is, the server's
            # clock says the lease is live: no takeover.
            assert not bob.claim("k1", "bob", ttl=60.0)
            # Only the server's clock advancing past the TTL frees it.
            inner.offset = 61.0
            assert bob.claim("k1", "bob", ttl=60.0)
            # alice's heartbeat now reports the loss (server-side truth).
            assert alice.heartbeat(["k1"], "alice", ttl=60.0) == 0
            assert [lease.worker for lease in bob.leases()] == ["bob"]

    def test_lease_expiries_are_in_the_servers_clock_domain(self):
        inner = self._SkewableStore()
        inner.offset = 1000.0
        with StoreServer(inner, port=0) as server:
            store = resolve_store(f"http:127.0.0.1:{server.port}")
            assert store.claim("k1", "alice", ttl=60.0)
            (lease,) = store.leases()
            assert lease.expires == pytest.approx(
                time.time() + 1000.0 + 60.0, abs=30.0
            )


class TestProvenanceAndQuarantine:
    def test_put_preserves_sqlite_provenance(self, inner, http_store, config):
        unit = _units(config)[0]
        http_store.put(unit, execute_unit(unit))
        provenance = inner.provenance(unit_key(unit))
        assert provenance is not None
        assert provenance["unit"] == unit.to_payload()
        assert "rerun-unit" in provenance["rerun_command"]

    def test_put_many_preserves_sqlite_provenance(self, inner, http_store, config):
        units = _units(config, cells=3)
        http_store.put_many([(unit, execute_unit(unit)) for unit in units])
        for unit in units:
            assert inner.provenance(unit_key(unit)) is not None

    def test_quarantine_round_trips_over_http(self, http_store, config):
        unit = _units(config)[0]
        failure = UnitFailure(
            unit_key=unit_key(unit),
            seed_path=unit.seed_path,
            run_start=unit.run_start,
            run_stop=unit.run_stop,
            error_type="RuntimeError",
            message="boom",
            attempts=3,
            unit_payload=unit.to_payload(),
        )
        write_quarantine(http_store, failure, worker="w0")
        (entry,) = quarantine_entries(http_store)
        assert entry.unit_key == unit_key(unit)
        assert entry.message == "boom"
        assert entry.worker == "w0"
        assert "rerun-unit" in entry.rerun


class TestWriteBehindSpool:
    def _fixtures(self, tmp_path):
        inner = SqliteStore(tmp_path / "served.db")
        server = StoreServer(inner, port=0).start()
        store = resolve_store(
            f"http:127.0.0.1:{server.port}?spool={tmp_path}/journal.jsonl"
        )
        return inner, server, store

    def test_unreachable_puts_spool_and_reconcile_on_restart(
        self, tmp_path, config
    ):
        inner, server, store = self._fixtures(tmp_path)
        units = _units(config, cells=4)
        results = [execute_unit(unit) for unit in units]
        store.put(units[0], results[0])
        server.shutdown()

        # Degraded mode: writes land in the local journal, reads of the
        # spooled keys are served from it, reads of anything else stay
        # strict errors.
        store.put(units[1], results[1])
        assert store.put_many([(units[2], results[2])]) == 1
        assert store.spooled() == 2
        journal = tmp_path / "journal.jsonl"
        assert journal.exists()
        assert store.get(units[1]) == results[1]
        with pytest.raises(StoreUnavailableError):
            store.get(units[3])

        # Restart on the same port: the next write reconciles the journal
        # first (oldest first, plain upserts), then lands itself.
        server = _restart(server)
        try:
            store.put(units[3], results[3])
            assert store.spooled() == 0
            assert not journal.exists()
            assert len(store) == 4
            for unit, result in zip(units, results):
                assert store.get(unit) == result
        finally:
            store.close()
            server.shutdown()
            inner.close()

    def test_spool_survives_a_client_crash(self, tmp_path, config):
        inner, server, store = self._fixtures(tmp_path)
        unit = _units(config)[0]
        result = execute_unit(unit)
        server.shutdown()
        store.put(unit, result)
        assert store.spooled() == 1
        # A second client process opening the same spool (this store
        # object simulates it by re-resolving the URI) inherits the
        # journal and reconciles it.
        reopened = resolve_store(
            f"http:127.0.0.1:{server.port}?spool={tmp_path}/journal.jsonl"
        )
        assert reopened.spooled() == 1
        server = _restart(server)
        try:
            assert reopened.reconcile() == 1
            assert reopened.get(unit) == result
            assert reopened.spooled() == 0
        finally:
            reopened.close()
            server.shutdown()
            inner.close()

    def test_reconcile_never_duplicates(self, tmp_path, config):
        inner, server, store = self._fixtures(tmp_path)
        unit = _units(config)[0]
        result = execute_unit(unit)
        store.put(unit, result)  # already on the server
        server.shutdown()
        store.put(unit, result)  # spooled again while down
        server = _restart(server)
        try:
            assert store.reconcile() == 1
            assert len(store) == 1  # upsert: one entry, not two
            assert store.get(unit) == result
        finally:
            store.close()
            server.shutdown()
            inner.close()

    def test_reconcile_while_down_keeps_the_journal(self, tmp_path, config):
        inner, server, store = self._fixtures(tmp_path)
        unit = _units(config)[0]
        server.shutdown()
        store.put(unit, execute_unit(unit))
        with pytest.raises(StoreUnavailableError):
            store.reconcile()
        assert store.spooled() == 1
        inner.close()

    def test_close_reconciles_best_effort(self, tmp_path, config):
        inner, server, store = self._fixtures(tmp_path)
        unit = _units(config)[0]
        result = execute_unit(unit)
        server.shutdown()
        store.put(unit, result)
        server = _restart(server)
        try:
            store.close()
            assert inner.get(unit) == result
        finally:
            server.shutdown()
            inner.close()


def _grids_equal(first, second) -> bool:
    return (
        np.array_equal(
            first.mean_inefficiency, second.mean_inefficiency, equal_nan=True
        )
        and np.array_equal(
            first.mean_received_ratio, second.mean_received_ratio, equal_nan=True
        )
        and np.array_equal(first.failure_counts, second.failure_counts)
    )


class TestChaosHttp:
    @pytest.mark.parametrize("scheme", ["per-run", "unit"])
    def test_chaotic_http_fleet_is_bit_identical_to_serial(
        self, inner, server, config, scheme
    ):
        serial = run_grid(
            config, P_VALUES, Q_VALUES, runs=2, seed=7, seed_scheme=scheme
        )
        chaotic = resolve_store(
            f"chaos+http:127.0.0.1:{server.port}?rate=0.2&seed=3&burst=2"
        )
        fleet = run_grid(
            config,
            P_VALUES,
            Q_VALUES,
            runs=2,
            seed=7,
            seed_scheme=scheme,
            cache=chaotic,
            fleet=True,
            lease_ttl=10.0,
            failure_policy=FailurePolicy(max_retries=2),
        )
        assert _grids_equal(serial, fleet)
        # Every unit's result landed exactly once in the served store.
        assert len(inner) == 4
        assert inner.leases() == []

    def test_chaos_http_schedule_is_deterministic(self, server, config):
        uri = f"chaos+http:127.0.0.1:{server.port}?rate=0.7&seed=11&ops=get"
        first = resolve_store(uri)
        second = resolve_store(uri)
        unit = _units(config)[0]

        def trace(store):
            outcomes = []
            for _ in range(12):
                try:
                    store.get(unit)
                    outcomes.append("ok")
                except StoreUnavailableError:
                    outcomes.append("fault")
            return outcomes

        assert trace(first) == trace(second)
        assert "fault" in trace(resolve_store(uri))


class TestServerCrashRecovery:
    def test_fleet_rides_out_a_server_restart(self, tmp_path, config):
        inner = SqliteStore(tmp_path / "served.db")
        server = StoreServer(inner, port=0).start()
        store = resolve_store(f"http:127.0.0.1:{server.port}")
        units = _units(config, cells=6, runs=2)
        # A generous transient-retry budget is exactly how a real worker
        # is configured to survive a result-store server restart.
        runner = FleetRunner(
            store,
            worker_id="w0",
            lease_ttl=20.0,
            claim_batch=1,
            policy=FailurePolicy(max_retries=0, store_retries=10),
        )
        collected = {}
        failures = []

        def run():
            try:
                runner.run(
                    units, lambda r: collected.__setitem__(r.seed_path, r)
                )
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.3)  # mid-sweep...
        server.shutdown()  # ...the server dies (all sockets severed)...
        time.sleep(0.3)  # ...stays dead long enough to hurt...
        server = _restart(server)  # ...and comes back on the same port.
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert failures == []
        assert len(collected) == len(units)
        for unit in units:
            assert collected[unit.seed_path] == execute_unit(unit)
        assert len(inner) == len(units)
        assert inner.leases() == []
        store.close()
        server.shutdown()
        inner.close()


_WRITES = re.compile(r"(\d+) writes")


class TestServeCli:
    def _spawn(self, *argv, cwd=None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=cwd,
        )

    def _run(self, *argv, cwd=None):
        process = self._spawn(*argv, cwd=cwd)
        stdout, stderr = process.communicate(timeout=600)
        return process.returncode, stdout, stderr

    def _serve(self, tmp_path, *extra):
        """Start ``cache serve`` on an ephemeral port; returns (proc, port)."""
        process = self._spawn(
            "cache", "serve", f"sqlite:{tmp_path}/served.db",
            "--port", "0", *extra, cwd=tmp_path,
        )
        banner = process.stdout.readline()
        assert "serving" in banner, banner
        port = int(re.search(r"http://[^:]+:(\d+)", banner).group(1))
        return process, port

    def test_serve_cli_fleet_matches_serial_bit_for_bit(self, tmp_path):
        base = ("run", "fig07", "--scale", "tiny", "--runs", "1", "--quiet")
        code, _, stderr = self._run(
            *base, "--cache-dir", str(tmp_path / "serial"),
            "--csv-dir", str(tmp_path / "csv_serial"), cwd=tmp_path,
        )
        assert code == 0, stderr

        server, port = self._serve(tmp_path)
        try:
            workers = [
                self._spawn(
                    *base, "--store", f"http:127.0.0.1:{port}", "--fleet",
                    "--lease-ttl", "10", "--worker-id", f"w{i}",
                    "--csv-dir", str(tmp_path / f"csv_w{i}"), cwd=tmp_path,
                )
                for i in range(2)
            ]
            outputs = [worker.communicate(timeout=600) for worker in workers]
            assert all(worker.returncode == 0 for worker in workers), outputs
        finally:
            server.terminate()
            server.wait(timeout=30)

        (serial_csv,) = sorted((tmp_path / "csv_serial").glob("*.csv"))
        for i in range(2):
            (fleet_csv,) = sorted((tmp_path / f"csv_w{i}").glob("*.csv"))
            assert fleet_csv.read_bytes() == serial_csv.read_bytes()
        # Zero duplicated executions: the workers' writes partition the
        # grid (tiny scale: a 4 x 4 grid = 16 units).
        writes = [int(_WRITES.search(stdout).group(1)) for stdout, _ in outputs]
        with SqliteStore(tmp_path / "served.db") as inner:
            assert sum(writes) == len(inner) == 16

    def test_serve_cli_requires_a_source(self, tmp_path):
        code, _, stderr = self._run("cache", "serve", cwd=tmp_path)
        assert code == 2
        assert "cache serve needs the store to front" in stderr

    def test_serve_cli_token_auth(self, tmp_path):
        server, port = self._serve(tmp_path, "--token", "s3cret")
        try:
            code, stdout, stderr = self._run(
                "cache", "info",
                "--store", f"http:127.0.0.1:{port}?token=s3cret", cwd=tmp_path,
            )
            assert code == 0, stderr
            assert "0 entries" in stdout
            code, _, stderr = self._run(
                "cache", "info", "--store", f"http:127.0.0.1:{port}",
                cwd=tmp_path,
            )
            assert code == 2
            assert "HTTP 401" in stderr
        finally:
            server.terminate()
            server.wait(timeout=30)

    def test_cache_info_prints_one_actionable_line_when_down(self, tmp_path):
        code, _, stderr = self._run(
            "cache", "info", "--store", "http:127.0.0.1:9", cwd=tmp_path
        )
        assert code == 2
        lines = [line for line in stderr.splitlines() if line.strip()]
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "cache serve" in lines[0]
        assert "http://127.0.0.1:9" in lines[0]

    def test_rerun_unit_prints_one_actionable_line_when_down(
        self, tmp_path, config
    ):
        unit = _units(config)[0]
        code, _, stderr = self._run(
            "rerun-unit", json.dumps(unit.to_payload()),
            "--store", "http:127.0.0.1:9", cwd=tmp_path,
        )
        assert code == 2
        lines = [line for line in stderr.splitlines() if line.strip()]
        assert len(lines) == 1
        assert "cache serve" in lines[0]
