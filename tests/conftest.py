"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SimulationConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_staircase_config() -> SimulationConfig:
    """A cheap LDGM Staircase configuration used by several integration tests."""
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )
