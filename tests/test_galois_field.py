"""Unit tests for GF(2^8) element arithmetic."""

import numpy as np
import pytest

from repro.galois.field import GF256, gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.galois.tables import EXP_TABLE, FIELD_SIZE, GROUP_ORDER, LOG_TABLE


class TestTables:
    def test_exp_table_covers_all_nonzero_elements(self):
        values = set(int(v) for v in EXP_TABLE[:GROUP_ORDER])
        assert values == set(range(1, FIELD_SIZE))

    def test_exp_and_log_are_inverse(self):
        for value in range(1, FIELD_SIZE):
            assert EXP_TABLE[LOG_TABLE[value]] == value

    def test_exp_table_periodicity(self):
        assert np.array_equal(EXP_TABLE[:GROUP_ORDER], EXP_TABLE[GROUP_ORDER:])


class TestAddition:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_add_self_is_zero(self):
        values = np.arange(256, dtype=np.uint8)
        assert np.all(gf_add(values, values) == 0)

    def test_add_broadcasts(self):
        result = gf_add(np.array([1, 2, 3], dtype=np.uint8), np.uint8(1))
        assert result.tolist() == [0, 3, 2]


class TestMultiplication:
    def test_multiplication_by_zero(self):
        values = np.arange(256, dtype=np.uint8)
        assert np.all(gf_mul(values, np.uint8(0)) == 0)

    def test_multiplication_by_one_is_identity(self):
        values = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf_mul(values, np.uint8(1)), values)

    def test_known_product(self):
        # 2 * 128 wraps through the primitive polynomial 0x11D: 0x100 ^ 0x11D = 0x1D.
        assert int(gf_mul(2, 128)) == 0x1D

    def test_commutativity_sample(self, rng):
        a = rng.integers(0, 256, size=200).astype(np.uint8)
        b = rng.integers(0, 256, size=200).astype(np.uint8)
        assert np.array_equal(gf_mul(a, b), gf_mul(b, a))

    def test_associativity_sample(self, rng):
        a = rng.integers(0, 256, size=100).astype(np.uint8)
        b = rng.integers(0, 256, size=100).astype(np.uint8)
        c = rng.integers(0, 256, size=100).astype(np.uint8)
        assert np.array_equal(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)))

    def test_distributivity_sample(self, rng):
        a = rng.integers(0, 256, size=100).astype(np.uint8)
        b = rng.integers(0, 256, size=100).astype(np.uint8)
        c = rng.integers(0, 256, size=100).astype(np.uint8)
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert np.array_equal(left, right)


class TestInverseAndDivision:
    def test_inverse_of_every_nonzero_element(self):
        values = np.arange(1, 256, dtype=np.uint8)
        assert np.all(gf_mul(values, gf_inv(values)) == 1)

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(np.uint8(0))

    def test_division_roundtrip(self, rng):
        a = rng.integers(0, 256, size=200).astype(np.uint8)
        b = rng.integers(1, 256, size=200).astype(np.uint8)
        assert np.array_equal(gf_mul(gf_div(a, b), b), a)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(np.uint8(5), np.uint8(0))


class TestPower:
    def test_power_zero_gives_one(self):
        values = np.arange(256, dtype=np.uint8)
        assert np.all(gf_pow(values, 0) == 1)

    def test_power_one_is_identity(self):
        values = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf_pow(values, 1), values)

    def test_power_matches_repeated_multiplication(self):
        value = np.uint8(7)
        product = np.uint8(1)
        for exponent in range(1, 10):
            product = gf_mul(product, value)
            assert int(gf_pow(value, exponent)) == int(product)

    def test_zero_to_positive_power_is_zero(self):
        assert int(gf_pow(np.uint8(0), 5)) == 0

    def test_zero_to_negative_power_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_pow(np.uint8(0), -1)

    def test_negative_power_is_inverse_power(self):
        value = np.uint8(19)
        assert int(gf_pow(value, -1)) == int(gf_inv(value))

    def test_fermat_little_theorem(self):
        values = np.arange(1, 256, dtype=np.uint8)
        assert np.all(gf_pow(values, 255) == 1)


class TestScalarWrapper:
    def test_arithmetic(self):
        assert GF256(3) * GF256(7) == GF256(9)
        assert GF256(5) + GF256(5) == GF256(0)
        assert (GF256(200) / GF256(200)) == GF256(1)

    def test_inverse(self):
        for value in (1, 2, 87, 255):
            assert GF256(value) * GF256(value).inverse() == GF256(1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GF256(256)
        with pytest.raises(ValueError):
            GF256(-1)

    def test_equality_with_int(self):
        assert GF256(17) == 17
        assert GF256(17) != 18

    def test_repr_and_int(self):
        assert repr(GF256(5)) == "GF256(5)"
        assert int(GF256(5)) == 5

    def test_validation_of_inputs(self):
        with pytest.raises(TypeError):
            GF256(3) + "not a field element"


class TestInputValidation:
    def test_out_of_range_array_rejected(self):
        with pytest.raises(ValueError):
            gf_mul(np.array([300]), np.array([2]))

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            gf_mul(np.array([1.5]), np.array([2.0]))
