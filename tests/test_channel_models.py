"""Unit tests for Bernoulli, perfect, trace and periodic-burst channels."""

import numpy as np
import pytest

from repro.channel import BernoulliChannel, PerfectChannel, PeriodicBurstChannel, TraceChannel
from repro.channel.trace import fit_gilbert_parameters


class TestBernoulli:
    def test_loss_rate_property(self):
        assert BernoulliChannel(0.25).global_loss_probability == 0.25

    def test_zero_and_one_rates(self, rng):
        assert not BernoulliChannel(0.0).loss_mask(100, rng).any()
        assert BernoulliChannel(1.0).loss_mask(100, rng).all()

    def test_empirical_rate(self, rng):
        mask = BernoulliChannel(0.3).loss_mask(100_000, rng)
        assert mask.mean() == pytest.approx(0.3, abs=0.01)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliChannel(1.2)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            BernoulliChannel(0.5).loss_mask(-5, rng)


class TestPerfect:
    def test_never_loses(self, rng):
        channel = PerfectChannel()
        assert channel.global_loss_probability == 0.0
        assert not channel.loss_mask(1000, rng).any()

    def test_repr(self):
        assert repr(PerfectChannel()) == "PerfectChannel()"


class TestTrace:
    def test_replays_trace(self):
        trace = [0, 1, 1, 0, 0]
        channel = TraceChannel(trace)
        mask = channel.loss_mask(5)
        assert mask.tolist() == [False, True, True, False, False]

    def test_cyclic_wrapping(self):
        channel = TraceChannel([1, 0])
        mask = channel.loss_mask(6)
        assert mask.tolist() == [True, False] * 3

    def test_non_cyclic_padding(self):
        channel = TraceChannel([1, 1], cyclic=False)
        mask = channel.loss_mask(5)
        assert mask.tolist() == [True, True, False, False, False]

    def test_global_loss_probability(self):
        assert TraceChannel([1, 0, 0, 0]).global_loss_probability == 0.25

    def test_random_offset_changes_start(self, rng):
        channel = TraceChannel([1] + [0] * 99, random_offset=True)
        masks = {tuple(channel.loss_mask(10, rng)) for _ in range(20)}
        assert len(masks) > 1

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceChannel([])

    def test_fit_gilbert_parameters_roundtrip(self, rng):
        from repro.channel import GilbertChannel

        channel = GilbertChannel(0.05, 0.4)
        trace = channel.loss_mask(300_000, rng)
        p, q = fit_gilbert_parameters(trace)
        assert p == pytest.approx(0.05, abs=0.01)
        assert q == pytest.approx(0.4, abs=0.03)

    def test_fit_requires_two_packets(self):
        with pytest.raises(ValueError):
            fit_gilbert_parameters([1])

    def test_fit_degenerate_traces(self):
        p, q = fit_gilbert_parameters([0, 0, 0, 0])
        assert p == 0.0 and q == 1.0
        p, q = fit_gilbert_parameters([1, 1, 1, 1])
        assert p == 0.0 and q == 0.0


class TestPeriodicBurst:
    def test_pattern(self):
        channel = PeriodicBurstChannel(period=5, burst_length=2)
        mask = channel.loss_mask(10)
        assert mask.tolist() == [True, True, False, False, False] * 2

    def test_offset(self):
        channel = PeriodicBurstChannel(period=4, burst_length=1, offset=2)
        mask = channel.loss_mask(8)
        assert mask.tolist() == [False, False, True, False] * 2

    def test_global_loss_probability(self):
        assert PeriodicBurstChannel(10, 3).global_loss_probability == pytest.approx(0.3)

    def test_zero_burst(self):
        assert not PeriodicBurstChannel(5, 0).loss_mask(20).any()

    def test_burst_longer_than_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicBurstChannel(5, 6)

    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            PeriodicBurstChannel(5, -1)


class TestLossMaskBatchContract:
    """The batched face of every channel (exhaustive parity in test_pipeline)."""

    def _rngs(self, runs=5):
        return [
            np.random.default_rng(np.random.SeedSequence([77, run]))
            for run in range(runs)
        ]

    @pytest.mark.parametrize(
        "channel",
        [
            BernoulliChannel(0.3),
            PerfectChannel(),
            PeriodicBurstChannel(6, 2, offset=1),
            TraceChannel([1, 0, 0, 1, 1, 0, 0, 0]),
            TraceChannel([1, 0, 0, 1, 1, 0, 0, 0], cyclic=False),
            TraceChannel([1, 0, 0, 1, 1, 0, 0, 0], random_offset=True),
        ],
        ids=repr,
    )
    def test_batch_rows_match_serial_masks(self, channel):
        for count in (0, 3, 50):
            serial = np.stack(
                [channel.loss_mask(count, rng) for rng in self._rngs()]
            ).reshape(len(self._rngs()), count)
            batch = channel.loss_mask_batch(count, self._rngs())
            assert np.array_equal(np.asarray(batch), serial)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BernoulliChannel(0.2).loss_mask_batch(-1, self._rngs())
        with pytest.raises(ValueError):
            TraceChannel([1, 0], random_offset=True).loss_mask_batch(-2, self._rngs())
