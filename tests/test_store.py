"""Tests for the pluggable result-store subsystem (``repro.store``)."""

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import SimulationConfig
from repro.runner.cache import ResultCache
from repro.runner.units import WorkUnit, execute_unit, plan_units
from repro.store import (
    JsonDirStore,
    MemoryStore,
    SqliteStore,
    StoreMigrationError,
    available_backends,
    decode_payload,
    encode_result,
    migrate_store,
    register_backend,
    resolve_store,
    shared_memory_store,
    unit_key,
)
from repro.store.registry import _BACKENDS


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


def _units(config, cells=2, runs=2, seed_scheme="per-run"):
    points = [((i,), config, 0.05, 0.5 + 0.1 * i) for i in range(cells)]
    return plan_units(points, runs=runs, base_seed=13, seed_scheme=seed_scheme)


def _make_store(backend: str, tmp_path: Path):
    if backend == "json-dir":
        return JsonDirStore(tmp_path / "jd")
    if backend == "sqlite":
        return SqliteStore(tmp_path / "store.db")
    return MemoryStore()


BACKENDS = ("json-dir", "sqlite", "memory")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    """One open store per built-in backend.

    The contract classes below consume this fixture, so a new backend's
    test module (e.g. ``test_store_http.py``) reuses the whole contract
    suite by subclassing them with an overridden ``store`` fixture.
    """
    store = _make_store(request.param, tmp_path)
    yield store
    store.close()


class TestStoreContract:
    def test_put_get_roundtrip(self, store, config):
        unit = _units(config)[0]
        result = execute_unit(unit)
        assert store.get(unit) is None
        store.put(unit, result)
        assert store.get(unit) == result
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_put_is_idempotent_upsert(self, store, config):
        unit = _units(config)[0]
        result = execute_unit(unit)
        store.put(unit, result)
        store.put(unit, result)
        assert len(store) == 1
        assert store.get(unit) == result

    def test_put_many(self, store, config):
        units = _units(config, cells=3)
        items = [(unit, execute_unit(unit)) for unit in units]
        assert store.put_many(items) == 3
        assert len(store) == 3
        for unit, result in items:
            assert store.get(unit) == result

    def test_records_round_canonical_keys(self, store, config):
        units = _units(config, cells=3)
        for unit in units:
            store.put(unit, execute_unit(unit))
        records = list(store.records())
        assert sorted(r.key for r in records) == sorted(unit_key(u) for u in units)
        for record in records:
            assert decode_payload(record.payload) is not None

    def test_scheme_counts_and_scoped_clear(self, store, config):
        for unit in _units(config, cells=2, seed_scheme="per-run"):
            store.put(unit, execute_unit(unit))
        for unit in _units(config, cells=3, seed_scheme="unit"):
            store.put(unit, execute_unit(unit))
        assert store.scheme_counts() == {"per-run": 2, "unit": 3}
        assert store.clear(scheme="per-run") == 2
        assert store.scheme_counts() == {"unit": 3}
        assert store.clear() == 3
        assert len(store) == 0

    def test_info_counts_size(self, store, config):
        for unit in _units(config, cells=2):
            store.put(unit, execute_unit(unit))
        info = store.info()
        assert info.backend == store.backend
        assert info.entries == 2
        assert info.size_bytes > 0
        assert info.scheme_counts == {"per-run": 2}

    def test_malformed_entry_is_a_miss(self, store, config):
        unit = _units(config)[0]
        store.put_record(unit_key(unit), {"schema": 999, "seed_scheme": "per-run"})
        assert store.get(unit) is None


class TestLeaseContract:
    def test_claim_is_exclusive(self, store):
        assert store.claim("k1", "alice", ttl=60.0)
        assert not store.claim("k1", "bob", ttl=60.0)
        assert [lease.worker for lease in store.leases()] == ["alice"]

    def test_completed_unit_cannot_be_claimed(self, store, config):
        unit = _units(config)[0]
        store.put(unit, execute_unit(unit))
        assert not store.claim(unit_key(unit), "alice", ttl=60.0)

    def test_release_reopens_the_unit(self, store):
        assert store.claim("k1", "alice", ttl=60.0)
        store.release("k1", "alice")
        assert store.claim("k1", "bob", ttl=60.0)

    def test_release_checks_ownership(self, store):
        assert store.claim("k1", "alice", ttl=60.0)
        store.release("k1", "bob")  # not the holder: no-op
        assert not store.claim("k1", "bob", ttl=60.0)

    def test_expired_lease_is_taken_over(self, store):
        assert store.claim("k1", "alice", ttl=0.05)
        time.sleep(0.1)
        assert store.claim("k1", "bob", ttl=60.0)
        assert [lease.worker for lease in store.leases()] == ["bob"]

    def test_heartbeat_extends_live_leases(self, store):
        assert store.claim("k1", "alice", ttl=0.3)
        deadline = time.time() + 0.6
        while time.time() < deadline:
            assert store.heartbeat(["k1"], "alice", ttl=0.3) == 1
            time.sleep(0.05)
        # Still held well past the original TTL.
        assert not store.claim("k1", "bob", ttl=60.0)

    def test_heartbeat_reports_lost_leases(self, store):
        assert store.claim("k1", "alice", ttl=0.05)
        time.sleep(0.1)
        assert store.claim("k1", "bob", ttl=60.0)
        assert store.heartbeat(["k1"], "alice", ttl=60.0) == 0


class TestRegistry:
    def test_bare_path_is_json_dir(self, tmp_path):
        store = resolve_store(str(tmp_path / "cache"))
        assert isinstance(store, JsonDirStore)
        assert store.root == tmp_path / "cache"

    def test_uri_prefixes(self, tmp_path):
        assert isinstance(resolve_store(f"json-dir:{tmp_path}/jd"), JsonDirStore)
        assert isinstance(resolve_store(f"sqlite:{tmp_path}/r.db"), SqliteStore)
        assert isinstance(resolve_store("memory:"), MemoryStore)

    def test_named_memory_store_is_shared(self):
        first = resolve_store("memory:shared-test")
        second = resolve_store("memory:shared-test")
        assert first is second
        assert first is shared_memory_store("shared-test")
        first.clear()

    def test_sqlite_needs_a_path(self):
        with pytest.raises(ValueError):
            resolve_store("sqlite:")

    def test_none_and_instances_pass_through(self, tmp_path):
        assert resolve_store(None) is None
        store = MemoryStore()
        assert resolve_store(store) is store

    def test_uri_reopens_the_same_store(self, tmp_path, config):
        store = SqliteStore(tmp_path / "r.db")
        unit = _units(config)[0]
        store.put(unit, execute_unit(unit))
        store.close()
        reopened = resolve_store(f"sqlite:{tmp_path}/r.db")
        assert len(reopened) == 1
        reopened.close()

    def test_third_party_backend_registration(self):
        register_backend("test-null", lambda location: MemoryStore(name=location))
        try:
            assert "test-null" in available_backends()
            store = resolve_store("test-null:x")
            assert isinstance(store, MemoryStore)
            assert store.name == "x"
        finally:
            _BACKENDS.pop("test-null", None)


class TestJsonDirByteCompat:
    """The json-dir backend must write exactly the pre-store cache bytes."""

    def test_entry_bytes_match_the_historical_layout(self, tmp_path, config):
        store = JsonDirStore(tmp_path / "jd")
        unit = _units(config)[0]
        result = execute_unit(unit)
        store.put(unit, result)
        key = unit_key(unit)
        path = tmp_path / "jd" / key[:2] / f"{key}.json"
        expected = json.dumps(
            {
                "schema": 2,
                "seed_scheme": unit.seed_scheme,
                "seed_path": list(result.seed_path),
                "run_start": result.run_start,
                "run_stop": result.run_stop,
                "inefficiency_ratios": list(result.inefficiency_ratios),
                "received_ratios": list(result.received_ratios),
                "failures": result.failures,
            }
        )
        assert path.read_text(encoding="utf-8") == expected

    def test_result_cache_alias_is_the_json_dir_backend(self, tmp_path, config):
        legacy = ResultCache(tmp_path / "a")
        store = JsonDirStore(tmp_path / "b")
        unit = _units(config)[0]
        result = execute_unit(unit)
        legacy.put(unit, result)
        store.put(unit, result)
        key = unit_key(unit)
        legacy_bytes = (tmp_path / "a" / key[:2] / f"{key}.json").read_bytes()
        store_bytes = (tmp_path / "b" / key[:2] / f"{key}.json").read_bytes()
        assert legacy_bytes == store_bytes
        assert isinstance(legacy, JsonDirStore)

    def test_pre_store_entries_satisfy_lookups(self, tmp_path, config):
        # An entry written by the old cache (same bytes) must be a hit for
        # the new store, and vice versa.
        legacy = ResultCache(tmp_path / "shared")
        unit = _units(config)[0]
        result = execute_unit(unit)
        legacy.put(unit, result)
        assert JsonDirStore(tmp_path / "shared").get(unit) == result


class TestSqliteProvenance:
    def test_put_records_provenance(self, tmp_path, config):
        store = SqliteStore(tmp_path / "r.db")
        unit = _units(config)[0]
        store.put(unit, execute_unit(unit))
        record = store.provenance(unit_key(unit))
        assert record is not None
        assert record["seed_scheme"].startswith(unit.seed_scheme)
        assert record["rerun_command"].startswith("python -m repro rerun-unit ")
        assert WorkUnit.from_payload(record["unit"]) == unit

    def test_provenance_unit_reexecutes_identically(self, tmp_path, config):
        store = SqliteStore(tmp_path / "r.db")
        unit = _units(config)[0]
        result = execute_unit(unit)
        store.put(unit, result)
        record = store.provenance(unit_key(unit))
        assert execute_unit(WorkUnit.from_payload(record["unit"])) == result

    def test_migrated_entries_carry_no_provenance(self, tmp_path, config):
        source = MemoryStore()
        unit = _units(config)[0]
        source.put(unit, execute_unit(unit))
        dest = SqliteStore(tmp_path / "r.db")
        migrate_store(source, dest)
        assert dest.provenance(unit_key(unit)) is None
        assert dest.get(unit) is not None


class TestMigration:
    def test_round_trip_is_byte_identical(self, tmp_path, config):
        source = JsonDirStore(tmp_path / "src")
        for unit in _units(config, cells=3):
            source.put(unit, execute_unit(unit))
        middle = SqliteStore(tmp_path / "mid.db")
        report = migrate_store(source, middle)
        assert report.copied == 3 and report.verified
        back = JsonDirStore(tmp_path / "back")
        migrate_store(middle, back)
        for path in sorted((tmp_path / "src").glob("??/*.json")):
            twin = tmp_path / "back" / path.parent.name / path.name
            assert twin.read_bytes() == path.read_bytes()

    def test_scheme_filter(self, tmp_path, config):
        source = MemoryStore()
        for unit in _units(config, cells=2, seed_scheme="per-run"):
            source.put(unit, execute_unit(unit))
        for unit in _units(config, cells=1, seed_scheme="unit"):
            source.put(unit, execute_unit(unit))
        dest = MemoryStore()
        report = migrate_store(source, dest, scheme="unit")
        assert report.copied == 1 and report.skipped == 2
        assert dest.scheme_counts() == {"unit": 1}

    def test_verification_catches_corruption(self, tmp_path, config):
        class LossyStore(MemoryStore):
            def put_record(self, key, payload, *, unit=None):
                corrupted = dict(payload)
                corrupted["failures"] = 999
                super().put_record(key, corrupted, unit=unit)

        source = MemoryStore()
        unit = _units(config)[0]
        source.put(unit, execute_unit(unit))
        with pytest.raises(StoreMigrationError):
            migrate_store(source, LossyStore())

    def test_migrated_store_resumes_a_sweep(self, tmp_path, config):
        from repro.core.sweep import simulate_grid

        cold = simulate_grid(
            config, [0.0, 0.05], [0.5, 1.0], runs=2, seed=4,
            cache=str(tmp_path / "jd"),
        )
        dest = SqliteStore(tmp_path / "r.db")
        migrate_store(JsonDirStore(tmp_path / "jd"), dest)
        warm = simulate_grid(
            config, [0.0, 0.05], [0.5, 1.0], runs=2, seed=4, cache=dest
        )
        assert dest.stats.hits == 4 and dest.stats.misses == 0
        import numpy as np

        assert np.array_equal(
            cold.mean_inefficiency, warm.mean_inefficiency, equal_nan=True
        )


# -- multi-process concurrency helpers (top level: must pickle) -----------


def _mp_sqlite_upsert(db_path, payload_text, key, iterations, queue):
    try:
        store = SqliteStore(db_path)
        payload = json.loads(payload_text)
        for _ in range(iterations):
            store.put_record(key, payload)
        store.close()
        queue.put("ok")
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(f"error: {exc!r}")


def _mp_sqlite_claim(db_path, key, worker, queue):
    try:
        store = SqliteStore(db_path)
        queue.put((worker, store.claim(key, worker, ttl=60.0)))
        store.close()
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put((worker, f"error: {exc!r}"))


def _mp_json_dir_put(root, payload_text, key, iterations, queue):
    try:
        store = JsonDirStore(root)
        payload = json.loads(payload_text)
        for _ in range(iterations):
            store.put_record(key, payload)
        queue.put("ok")
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(f"error: {exc!r}")


def _run_processes(target, args_per_process):
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    processes = [
        context.Process(target=target, args=(*args, queue))
        for args in args_per_process
    ]
    for process in processes:
        process.start()
    outcomes = [queue.get(timeout=60) for _ in processes]
    for process in processes:
        process.join(timeout=60)
    return outcomes


class TestMultiProcessConcurrency:
    def test_sqlite_concurrent_upserts_of_one_unit(self, tmp_path, config):
        unit = _units(config)[0]
        payload = json.dumps(encode_result(unit, execute_unit(unit)))
        key = unit_key(unit)
        db = str(tmp_path / "race.db")
        outcomes = _run_processes(
            _mp_sqlite_upsert, [(db, payload, key, 25) for _ in range(4)]
        )
        assert outcomes == ["ok"] * 4
        store = SqliteStore(db)
        assert len(store) == 1
        assert store.get_record(key) == json.loads(payload)
        store.close()

    def test_sqlite_claim_race_has_one_winner(self, tmp_path):
        db = str(tmp_path / "race.db")
        SqliteStore(db).close()  # pre-create so workers race on claims only
        outcomes = _run_processes(
            _mp_sqlite_claim, [(db, "unit-k", f"w{i}") for i in range(4)]
        )
        wins = [worker for worker, won in outcomes if won is True]
        assert len(wins) == 1
        store = SqliteStore(db)
        assert [lease.worker for lease in store.leases()] == wins
        store.close()

    def test_json_dir_parallel_puts_stay_atomic(self, tmp_path, config):
        # Four processes hammer the same key with distinct payloads; the
        # tempfile + os.replace protocol must leave a complete entry that
        # matches exactly one of the writers, never a torn mix.
        unit = _units(config)[0]
        result = execute_unit(unit)
        key = unit_key(unit)
        root = str(tmp_path / "jd")
        payloads = []
        for marker in range(4):
            payload = encode_result(unit, result)
            payload["failures"] = marker
            payloads.append(json.dumps(payload))
        outcomes = _run_processes(
            _mp_json_dir_put, [(root, text, key, 25) for text in payloads]
        )
        assert outcomes == ["ok"] * 4
        final = (Path(root) / key[:2] / f"{key}.json").read_text(encoding="utf-8")
        assert final in payloads
        leftovers = list((Path(root) / key[:2]).glob(".tmp-*"))
        assert leftovers == []


class TestCacheMigrateCli:
    def _run(self, *argv, cwd=None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
        )

    def test_migrate_command_round_trips(self, tmp_path, config):
        source = JsonDirStore(tmp_path / "src")
        for unit in _units(config, cells=2):
            source.put(unit, execute_unit(unit))
        migrated = self._run(
            "cache", "migrate", f"json-dir:{tmp_path}/src",
            f"sqlite:{tmp_path}/r.db",
        )
        assert migrated.returncode == 0, migrated.stderr
        assert "2 entries copied (verified)" in migrated.stdout
        info = self._run("cache", "info", "--store", f"sqlite:{tmp_path}/r.db")
        assert info.returncode == 0
        assert "2 entries" in info.stdout

    def test_migrate_requires_both_stores(self, tmp_path):
        result = self._run("cache", "migrate", f"json-dir:{tmp_path}/only")
        assert result.returncode == 2
        assert "SOURCE and DEST" in result.stderr

    def test_scheme_scoped_clear(self, tmp_path, config):
        store = JsonDirStore(tmp_path / "jd")
        for unit in _units(config, cells=2, seed_scheme="per-run"):
            store.put(unit, execute_unit(unit))
        for unit in _units(config, cells=1, seed_scheme="unit"):
            store.put(unit, execute_unit(unit))
        cleared = self._run(
            "cache", "clear", "--cache-dir", str(tmp_path / "jd"),
            "--scheme", "per-run",
        )
        assert cleared.returncode == 0
        assert "removed 2 entries" in cleared.stdout
        assert store.scheme_counts() == {"unit": 1}

    def test_rerun_unit_round_trip(self, tmp_path, config):
        store = SqliteStore(tmp_path / "r.db")
        unit = _units(config)[0]
        result = execute_unit(unit)
        store.put(unit, result)
        record = store.provenance(unit_key(unit))
        store.close()
        rerun = self._run("rerun-unit", json.dumps(record["unit"]))
        assert rerun.returncode == 0, rerun.stderr
        assert json.loads(rerun.stdout) == encode_result(unit, result)
