"""Tests for the adaptive sweep controller and its statistics stack."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.adaptive import AdaptiveConfig, plan_first_round, resolve_adaptive, round_schedule
from repro.analysis.csvio import grid_to_csv
from repro.analysis.tables import format_runs_table
from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats, RunResult, RunResultBatch, SeriesResult
from repro.core.sweep import simulate_grid
from repro.resilience.faults import FaultInjectingExecutor, FaultPlan
from repro.resilience.policy import FailurePolicy
from repro.runner.engine import run_adaptive, run_grid, run_series
from repro.store import MemoryStore
from repro.utils.stats import (
    mean_interval_halfwidth,
    normal_quantile,
    student_t_cdf,
    t_quantile,
    wilson_interval,
)

P_VALUES = [0.0, 0.05, 0.2, 0.5]
Q_VALUES = [0.0, 0.05, 0.2, 0.5]


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )


class TestStats:
    def test_normal_quantile_table_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-5)

    def test_t_quantile_table_values(self):
        assert t_quantile(0.975, df=10) == pytest.approx(2.228139, abs=1e-5)
        assert t_quantile(0.975, df=1) == pytest.approx(12.7062, abs=1e-3)
        assert t_quantile(0.95, df=30) == pytest.approx(1.697261, abs=1e-5)
        # Converges to the normal quantile for large df.
        assert t_quantile(0.975, df=10000) == pytest.approx(
            normal_quantile(0.975), abs=1e-3
        )

    def test_t_cdf_is_symmetric(self):
        for t in (0.5, 1.3, 2.7):
            assert student_t_cdf(t, 7) + student_t_cdf(-t, 7) == pytest.approx(1.0)

    def test_wilson_interval_known_value(self):
        # 8/10 successes at 95%: the classical Wilson interval.
        low, high = wilson_interval(8, 10, 0.95)
        assert low == pytest.approx(0.4902, abs=1e-3)
        assert high == pytest.approx(0.9433, abs=1e-3)

    def test_wilson_interval_boundaries(self):
        low, high = wilson_interval(10, 10, 0.95)
        assert high == 1.0 and 0.0 < low < 1.0
        low, high = wilson_interval(0, 10, 0.95)
        assert low == 0.0 and 0.0 < high < 1.0
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_width_shrinks_with_trials(self):
        widths = []
        for n in (8, 16, 32, 64):
            low, high = wilson_interval(n, n, 0.95)
            widths.append(high - low)
        assert widths == sorted(widths, reverse=True)

    def test_mean_interval_halfwidth(self):
        # 16 samples, known variance: t(0.975, 15) * sqrt(var / 16).
        expected = t_quantile(0.975, 15) * np.sqrt(0.0004 / 16)
        assert mean_interval_halfwidth(16, 0.0004, 0.95) == pytest.approx(expected)
        assert mean_interval_halfwidth(1, 0.0, 0.95) == np.inf
        assert mean_interval_halfwidth(10, 0.0, 0.95) == 0.0


class TestCellStatsStreaming:
    def _batch(self, rng, runs, fail_fraction=0.2):
        decoded = rng.random(runs) >= fail_fraction
        n_necessary = np.where(decoded, rng.integers(200, 400, size=runs), -1)
        return RunResultBatch(
            decoded=decoded,
            n_necessary=n_necessary.astype(np.int64),
            n_received=rng.integers(200, 500, size=runs).astype(np.int64),
            n_sent=np.full(runs, 500, dtype=np.int64),
            k=200,
            n=500,
        )

    def test_streaming_matches_numpy_on_random_batches(self, rng):
        stats = CellStats()
        for _ in range(7):
            stats.add_batch(self._batch(rng, int(rng.integers(1, 40))))
        reference = np.asarray(stats.inefficiency_ratios)
        assert stats.count == stats.runs
        assert stats.decoded == reference.size
        assert stats.variance == pytest.approx(np.var(reference, ddof=1), rel=1e-12)
        assert stats.stderr == pytest.approx(
            np.sqrt(np.var(reference, ddof=1) / reference.size), rel=1e-12
        )

    def test_streaming_matches_numpy_run_by_run(self, rng):
        stats = CellStats()
        for batch in [self._batch(rng, 25)]:
            for result in batch.to_results():
                stats.add(result)
        reference = np.asarray(stats.inefficiency_ratios)
        assert stats.variance == pytest.approx(np.var(reference, ddof=1), rel=1e-12)

    def test_add_ratios_matches_add_batch(self, rng):
        batch = self._batch(rng, 30)
        a, b = CellStats(), CellStats()
        a.add_batch(batch)
        b.add_ratios(
            batch.inefficiency_ratios().tolist(),
            batch.received_ratios().tolist(),
            batch.failures,
        )
        assert a.runs == b.runs and a.failures == b.failures
        assert a.variance == pytest.approx(b.variance, rel=1e-12)
        assert a.decode_probability == b.decode_probability

    def test_decode_ci_is_the_wilson_interval(self, rng):
        stats = CellStats()
        stats.add_ratios([1.1] * 8, [1.5] * 10, failures=2)
        assert stats.decode_ci(0.95) == wilson_interval(8, 10, 0.95)

    def test_variance_undefined_below_two_samples(self):
        stats = CellStats()
        assert np.isnan(stats.variance)
        stats.add_ratios([1.2], [1.2], failures=0)
        assert np.isnan(stats.variance)


class TestNaNSafeAggregates:
    def test_best_parameter_skips_empty_cells(self, config):
        # Poison index 0's only unit under --on-error skip: the cell ends
        # up empty (zero failures recorded, NaN mean) and must not win.
        policy = FailurePolicy(
            max_retries=0, on_error="skip", backoff_base=0.001, backoff_max=0.002
        )
        plan = FaultPlan(poison=frozenset({(0,)}))
        configs = [config.with_updates(expansion_ratio=r) for r in (1.5, 2.5)]
        series = run_series(
            configs,
            [1.5, 2.5],
            p=0.0,
            q=1.0,
            runs=2,
            seed=7,
            executor=FaultInjectingExecutor(plan, policy=policy),
            failure_policy=policy,
        )
        assert np.isnan(series.mean_inefficiency[0])
        assert series.failure_counts[0] == 0
        assert series.best_parameter() == 2.5

    def test_best_parameter_nan_when_nothing_decodes(self):
        series = SeriesResult(
            parameter_name="x",
            parameter_values=np.array([1.0, 2.0]),
            mean_inefficiency=np.array([np.nan, np.nan]),
            failure_counts=np.array([0, 3]),
            runs=2,
        )
        assert np.isnan(series.best_parameter())

    def test_grid_aggregates_ignore_empty_cells(self, config):
        policy = FailurePolicy(
            max_retries=0, on_error="skip", backoff_base=0.001, backoff_max=0.002
        )
        plan = FaultPlan(poison=frozenset({(0, 0)}))
        grid = run_grid(
            config,
            [0.0, 0.05],
            [0.5, 1.0],
            runs=2,
            seed=7,
            executor=FaultInjectingExecutor(plan, policy=policy),
            failure_policy=policy,
        )
        assert np.isnan(grid.mean_inefficiency[0, 0])
        assert grid.failure_counts[0, 0] == 0
        assert not grid.decodable_mask[0, 0]
        assert np.isfinite(grid.min_inefficiency())
        assert np.isfinite(grid.max_inefficiency())
        assert np.isfinite(grid.mean_over_decodable())


class TestConfigAndSchedule:
    def test_resolve_adaptive(self):
        assert resolve_adaptive(None) is None
        assert resolve_adaptive(False) is None
        assert resolve_adaptive(True) == AdaptiveConfig()
        cfg = AdaptiveConfig(ci_width=0.1)
        assert resolve_adaptive(cfg) is cfg
        assert resolve_adaptive({"ci_width": 0.1}) == cfg
        with pytest.raises(TypeError):
            resolve_adaptive(3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(confidence=1.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(ci_width=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_runs=1)
        with pytest.raises(ValueError):
            AdaptiveConfig(growth=1.0)

    def test_schedule_targets_are_chunk_aligned(self):
        assert round_schedule(8, 2.0, 100) == [8, 16, 32, 64, 100]
        assert round_schedule(4, 2.0, 12) == [4, 8, 12]
        assert round_schedule(8, 2.0, 8) == [8]
        assert round_schedule(8, 2.0, 5) == [5]
        # Every boundary except possibly the budget is a min_runs multiple.
        for target in round_schedule(6, 1.7, 97)[:-1]:
            assert target % 6 == 0

    def test_plan_first_round_counts(self, config):
        units = plan_first_round(
            config, P_VALUES, Q_VALUES, runs=100, adaptive=AdaptiveConfig(min_runs=8)
        )
        assert len(units) == len(P_VALUES) * len(Q_VALUES)
        assert all(unit.run_start == 0 and unit.run_stop == 8 for unit in units)


class TestAdaptiveBitIdentity:
    # A loose width makes cells settle at different run counts, which is
    # the interesting case for the determinism contract.
    CFG = AdaptiveConfig(min_runs=4, ci_width=0.6)

    @pytest.mark.parametrize("scheme", ["per-run", "unit"])
    def test_adaptive_equals_fixed_truncation(self, config, scheme):
        grid = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=self.CFG, seed_scheme=scheme,
        )
        runs_per_cell = np.asarray(grid.metadata["adaptive"]["runs_per_cell"])
        counts = sorted(set(runs_per_cell.ravel().tolist()))
        assert len(counts) > 1, "test wants cells settling at different counts"
        for count in counts:
            fixed = run_grid(
                config, P_VALUES, Q_VALUES, runs=int(count), seed=1,
                runs_per_unit=self.CFG.min_runs, seed_scheme=scheme,
            )
            mask = runs_per_cell == count
            assert np.array_equal(
                grid.mean_inefficiency[mask],
                fixed.mean_inefficiency[mask],
                equal_nan=True,
            )
            assert np.array_equal(
                grid.mean_received_ratio[mask], fixed.mean_received_ratio[mask]
            )
            assert np.array_equal(
                grid.failure_counts[mask], fixed.failure_counts[mask]
            )

    @pytest.mark.parametrize("scheme", ["per-run", "unit"])
    def test_two_fleet_workers_match_serial_adaptive(self, config, scheme):
        serial = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=self.CFG, seed_scheme=scheme,
        )
        store = MemoryStore()
        grids = {}

        def worker(name):
            grids[name] = run_adaptive(
                config, P_VALUES, Q_VALUES, runs=12, seed=1,
                adaptive=self.CFG, seed_scheme=scheme,
                cache=store, fleet=True, lease_ttl=10.0, worker_id=name,
            )

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert set(grids) == {"w0", "w1"}
        for grid in grids.values():
            assert np.array_equal(
                serial.mean_inefficiency, grid.mean_inefficiency, equal_nan=True
            )
            assert np.array_equal(serial.failure_counts, grid.failure_counts)
            assert (
                serial.metadata["adaptive"]["runs_per_cell"]
                == grid.metadata["adaptive"]["runs_per_cell"]
            )
        # Each adaptive unit executed exactly once, fleet-wide.
        total_units = sum(
            len(round_schedule(self.CFG.min_runs, self.CFG.growth, runs))
            for runs in np.asarray(
                serial.metadata["adaptive"]["runs_per_cell"]
            ).ravel()
        )
        assert store.stats.writes == total_units

    def test_adaptive_run_is_cache_resumable(self, config):
        store = MemoryStore()
        first = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1, adaptive=self.CFG, cache=store
        )
        writes = store.stats.writes
        again = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1, adaptive=self.CFG, cache=store
        )
        assert store.stats.writes == writes  # everything served from cache
        assert np.array_equal(
            first.mean_inefficiency, again.mean_inefficiency, equal_nan=True
        )


class TestStoppingRule:
    def test_tighter_ci_never_runs_fewer(self, config):
        wide = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=AdaptiveConfig(min_runs=4, ci_width=0.6),
        )
        tight = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=AdaptiveConfig(min_runs=4, ci_width=0.3),
        )
        wide_runs = np.asarray(wide.metadata["adaptive"]["runs_per_cell"])
        tight_runs = np.asarray(tight.metadata["adaptive"]["runs_per_cell"])
        assert (tight_runs >= wide_runs).all()
        assert tight_runs.sum() > wide_runs.sum()

    def test_budget_caps_unsettled_cells(self, config):
        grid = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=AdaptiveConfig(min_runs=4, ci_width=0.01),
        )
        meta = grid.metadata["adaptive"]
        assert (np.asarray(meta["runs_per_cell"]) == 12).all()
        assert not np.asarray(meta["settled"]).any()
        assert meta["saved_runs"] == 0

    def test_savings_accounting(self, config):
        grid = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=AdaptiveConfig(min_runs=4, ci_width=0.6),
        )
        meta = grid.metadata["adaptive"]
        assert meta["exhaustive_runs"] == len(P_VALUES) * len(Q_VALUES) * 12
        assert meta["executed_runs"] == int(
            np.asarray(meta["runs_per_cell"]).sum()
        )
        assert meta["saved_runs"] == meta["exhaustive_runs"] - meta["executed_runs"]
        assert 0 < meta["saved_fraction"] < 1


class TestCliffRefinement:
    # At expansion ratio 1.5 the staircase code's decode cliff on the
    # (p, 1.0) slice sits between p=0.3 and p=0.4.
    @pytest.fixture
    def cliff_config(self, config) -> SimulationConfig:
        return config.with_updates(expansion_ratio=1.5)

    def test_refinement_localises_a_known_threshold(self, cliff_config):
        cfg = AdaptiveConfig(
            min_runs=4, ci_width=0.6, refine_cliff=True, refine_resolution=0.05
        )
        grid = run_adaptive(
            cliff_config, [0.0, 0.5], [1.0], runs=8, seed=1, adaptive=cfg
        )
        meta = grid.metadata["adaptive"]
        assert grid.decodable_mask[0, 0] and not grid.decodable_mask[1, 0]
        cliffs = [c for c in meta["cliffs"] if c["axis"] == "p"]
        assert len(cliffs) == 1
        low, high = cliffs[0]["bracket"]
        assert 0.0 <= low < high <= 0.5
        assert high - low <= 0.05
        assert cliffs[0]["decodable_at_low"] is True
        # Refined probes are full grid rows: per-cell stats included.
        assert meta["refined"]
        for row in meta["refined"]:
            assert {"p", "q", "runs", "failures", "mean_received_ratio"} <= set(row)
            assert row["runs"] > 0
        assert meta["refined_runs"] == sum(r["runs"] for r in meta["refined"])

    def test_refinement_is_deterministic(self, cliff_config):
        cfg = AdaptiveConfig(
            min_runs=4, ci_width=0.6, refine_cliff=True, refine_resolution=0.05
        )
        first = run_adaptive(
            cliff_config, [0.0, 0.5], [1.0], runs=8, seed=1, adaptive=cfg
        )
        second = run_adaptive(
            cliff_config, [0.0, 0.5], [1.0], runs=8, seed=1, adaptive=cfg
        )
        assert first.metadata["adaptive"]["cliffs"] == second.metadata["adaptive"]["cliffs"]
        # repr-compare: undecodable probe rows carry NaN means, and
        # NaN != NaN would fail plain dict equality.
        assert repr(first.metadata["adaptive"]["refined"]) == repr(
            second.metadata["adaptive"]["refined"]
        )

    def test_no_cliff_no_probes(self, config):
        cfg = AdaptiveConfig(
            min_runs=4, ci_width=0.6, refine_cliff=True, refine_resolution=0.05
        )
        grid = run_adaptive(config, [0.0], [1.0], runs=8, seed=1, adaptive=cfg)
        meta = grid.metadata["adaptive"]
        assert meta["refined"] == [] and meta["cliffs"] == []


class TestIntegration:
    def test_simulate_grid_adaptive_kwarg(self, config):
        grid = simulate_grid(
            config, P_VALUES, Q_VALUES, runs=8, seed=1,
            adaptive={"min_runs": 4, "ci_width": 0.6},
        )
        assert "adaptive" in grid.metadata
        fixed = simulate_grid(config, P_VALUES, Q_VALUES, runs=8, seed=1)
        assert "adaptive" not in fixed.metadata

    def test_csv_rows_carry_per_cell_runs(self, config):
        grid = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=AdaptiveConfig(min_runs=4, ci_width=0.6),
        )
        runs_per_cell = np.asarray(grid.metadata["adaptive"]["runs_per_cell"])
        text = grid_to_csv(grid)
        rows = [
            line.split(",") for line in text.splitlines()
            if line and not line.startswith(("#", "p,"))
        ]
        assert len(rows) == runs_per_cell.size
        for row in rows:
            i = P_VALUES.index(float(row[0]))
            j = Q_VALUES.index(float(row[1]))
            assert int(row[5]) == runs_per_cell[i, j]

    def test_adaptive_csv_rows_match_fixed_reference(self, config):
        # The CI gate's contract, in miniature: every settled cell's CSV
        # row is byte-identical to the row of a fixed sweep at that
        # cell's final run count.
        cfg = AdaptiveConfig(min_runs=4, ci_width=0.6)
        grid = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1, adaptive=cfg
        )
        runs_per_cell = np.asarray(grid.metadata["adaptive"]["runs_per_cell"])
        adaptive_rows = {
            tuple(line.split(",")[:2]): line
            for line in grid_to_csv(grid).splitlines()
            if line and not line.startswith(("#", "p,"))
        }
        for count in sorted(set(runs_per_cell.ravel().tolist())):
            fixed = run_grid(
                config, P_VALUES, Q_VALUES, runs=int(count), seed=1,
                runs_per_unit=cfg.min_runs,
            )
            for line in grid_to_csv(fixed).splitlines():
                if not line or line.startswith(("#", "p,")):
                    continue
                parts = line.split(",")
                i = P_VALUES.index(float(parts[0]))
                j = Q_VALUES.index(float(parts[1]))
                if runs_per_cell[i, j] == count:
                    assert adaptive_rows[tuple(parts[:2])] == line

    def test_runs_table_marks_unsettled_cells(self, config):
        grid = run_adaptive(
            config, P_VALUES, Q_VALUES, runs=12, seed=1,
            adaptive=AdaptiveConfig(min_runs=4, ci_width=0.01),
        )
        table = format_runs_table(grid)
        assert "12*" in table

    def test_run_adaptive_rejects_missing_config(self, config):
        with pytest.raises(ValueError):
            run_adaptive(config, P_VALUES, Q_VALUES, runs=8, adaptive=None)


def test_run_result_batch_roundtrip_still_streams(rng):
    """add() and add_batch() agree on the streaming accumulators."""
    decoded = rng.random(20) >= 0.3
    batch = RunResultBatch(
        decoded=decoded,
        n_necessary=np.where(decoded, rng.integers(200, 400, size=20), -1).astype(
            np.int64
        ),
        n_received=rng.integers(200, 500, size=20).astype(np.int64),
        n_sent=np.full(20, 500, dtype=np.int64),
        k=200,
        n=500,
    )
    a, b = CellStats(), CellStats()
    a.add_batch(batch)
    for result in batch.to_results():
        b.add(result)
    assert a.runs == b.runs and a.failures == b.failures
    assert a.variance == pytest.approx(b.variance, rel=1e-12)
    assert a.stderr == pytest.approx(b.stderr, rel=1e-12)
