#!/usr/bin/env python3
"""From a measured loss trace to a tuned FLUTE session.

Real deployments rarely know their Gilbert parameters; they have packet loss
traces.  This example closes that loop:

1. generate a "measured" trace (here: from a hidden Gilbert channel playing
   the role of the real network),
2. fit Gilbert (p, q) parameters to the trace with the maximum-likelihood
   estimator,
3. check against the analytic decodability limits (figure 6) which expansion
   ratios can work at all,
4. pick the best (code, tx model) by simulation and verify the choice by
   replaying the *original trace* through a full FLUTE delivery.

Run with:  python examples/loss_trace_fitting.py
"""

import numpy as np

from repro.channel import GilbertChannel, TraceChannel
from repro.channel.limits import is_decodable, minimum_q_for_decoding
from repro.channel.trace import fit_gilbert_parameters
from repro.core.recommendations import recommend_for_channel
from repro.flute import deliver_object


def main() -> None:
    # 1. A loss trace "measured" on the production network.
    hidden_network = GilbertChannel(p=0.04, q=0.35)
    trace = hidden_network.loss_mask(200_000, np.random.default_rng(5))
    print(f"trace: {trace.size} packets, {trace.mean():.2%} lost")

    # 2. Fit the Gilbert model.
    p, q = fit_gilbert_parameters(trace)
    print(f"fitted Gilbert parameters: p={p:.4f}, q={q:.4f} "
          f"(true values 0.04 / 0.35)\n")

    # 3. Which expansion ratios can possibly work on this channel?
    for ratio in (1.5, 2.0, 2.5):
        feasible = is_decodable(p, q, ratio)
        limit = minimum_q_for_decoding(p, ratio)
        print(f"ratio {ratio}: decodable on average? {feasible} "
              f"(needs q >= {limit:.3f})")
    print()

    # 4. Rank candidate configurations on the fitted channel.
    recommendations = recommend_for_channel(p, q, k=2000, runs=5, seed=9,
                                            expansion_ratios=(2.0, 2.5))
    for rank, recommendation in enumerate(recommendations[:4], start=1):
        print(f"{rank}. {recommendation.describe()}")
    best = recommendations[0]

    # 5. Verify with a real FLUTE delivery replaying the measured trace.
    rng = np.random.default_rng(1)
    object_data = bytes(rng.integers(0, 256, size=256 * 1024, dtype=np.uint8))
    reports = deliver_object(
        object_data,
        symbol_size=1024,
        channel=TraceChannel(trace, random_offset=True),
        code=best.code,
        expansion_ratio=best.expansion_ratio,
        tx_model=best.tx_model,
        tx_options={"source_fraction": 0.2} if best.tx_model == "tx_model_6" else None,
        seed=3,
        num_receivers=3,
    )
    print("\nreplaying the measured trace through a full FLUTE delivery:")
    for index, report in enumerate(reports):
        status = "ok" if report.complete and report.data_matches else "FAILED"
        print(f"  receiver {index}: {status}, inefficiency "
              f"{report.inefficiency_ratio:.3f}, loss {report.loss_fraction:.1%}")


if __name__ == "__main__":
    main()
