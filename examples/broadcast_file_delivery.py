#!/usr/bin/env python3
"""File broadcast to heterogeneous receivers (the DVB-H / MBMS scenario).

The paper's motivating context is IP Datacast / MBMS: one sender broadcasts
a file to many receivers with no back channel, and every receiver sees its
own loss process (movement, obstacles, distance...).  This example uses the
FLUTE/ALC substrate end to end -- real packets, real payload decoding -- and
shows why the paper recommends a random transmission order (Tx_model_4) with
LDGM Triangle when the channels are unknown: every receiver then gets almost
the same inefficiency ratio, whatever its loss pattern.

Run with:  python examples/broadcast_file_delivery.py
"""

import numpy as np

from repro.channel import BernoulliChannel, GilbertChannel
from repro.flute import FluteReceiver, FluteSender

#: The receiver population: same session, very different channels.
RECEIVER_CHANNELS = {
    "pedestrian, light loss": GilbertChannel(p=0.01, q=0.80),
    "vehicular, bursty loss": GilbertChannel(p=0.05, q=0.25),
    "cell edge, heavy loss": GilbertChannel(p=0.20, q=0.50),
    "indoor, random loss": BernoulliChannel(0.15),
}


def broadcast(tx_model: str, code: str, expansion_ratio: float, seed: int = 2024) -> None:
    rng = np.random.default_rng(seed)
    object_data = bytes(rng.integers(0, 256, size=512 * 1024, dtype=np.uint8))  # 512 KiB file

    sender = FluteSender(
        object_data,
        symbol_size=1024,
        code=code,
        expansion_ratio=expansion_ratio,
        tx_model=tx_model,
        seed=seed,
        content_location="firmware-update.bin",
    )
    packets = list(sender.packets())
    fdt_packet, data_packets = packets[0], packets[1:]
    print(f"\n=== {code} + {tx_model} (ratio {expansion_ratio}) ===")
    print(f"object: {len(object_data)} bytes -> k={sender.code.k} source packets, "
          f"n={sender.code.n} packets on the wire")

    for name, channel in RECEIVER_CHANNELS.items():
        receiver = FluteReceiver(tsi=sender.tsi)
        receiver.feed(fdt_packet)
        loss_mask = channel.loss_mask(len(data_packets), rng)
        for packet, lost in zip(data_packets, loss_mask):
            if lost:
                continue
            if receiver.feed(packet):
                break
        if receiver.is_complete and receiver.object_data() == object_data:
            print(f"  {name:28s} loss {channel.global_loss_probability:5.1%}  "
                  f"-> decoded after {receiver.packets_until_decoded} packets "
                  f"(inefficiency {receiver.inefficiency_ratio:.3f})")
        else:
            print(f"  {name:28s} loss {channel.global_loss_probability:5.1%}  "
                  f"-> FAILED to decode (received {receiver.packets_received} packets)")


if __name__ == "__main__":
    # The paper's recommendation for unknown/heterogeneous channels...
    broadcast("tx_model_4", "ldgm-triangle", expansion_ratio=2.5)
    # ...versus a naive sequential transmission, which collapses under bursts.
    broadcast("tx_model_1", "ldgm-triangle", expansion_ratio=2.5)
    # ...and the classic RSE + interleaving combination for comparison.
    broadcast("tx_model_5", "rse", expansion_ratio=2.5)
