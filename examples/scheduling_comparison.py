#!/usr/bin/env python3
"""Compare the six transmission models on a bursty channel (figure 15 style).

For a fixed Gilbert channel this example simulates every (transmission
model, FEC code) combination at ratio 2.5 and prints the comparison matrix,
reproducing the reasoning behind figure 15 and the recommendations of
section 6.1: interleaving is what saves RSE, random scheduling is what saves
the LDGM codes, and sequential parity transmission should be avoided.

Run with:  python examples/scheduling_comparison.py [p] [q]
"""

import sys

from repro.analysis import compare_at_point, format_comparison_table
from repro.analysis.comparison import DEFAULT_CODES, DEFAULT_TX_MODELS
from repro.channel import GilbertChannel


def main(p: float = 0.05, q: float = 0.30) -> None:
    channel = GilbertChannel(p, q)
    print(f"channel: p={p}, q={q} -> global loss {channel.global_loss_probability:.1%}, "
          f"mean burst {channel.mean_burst_length:.1f} packets")
    print("mean inefficiency ratio per (transmission model, code), ratio 2.5, "
          "k = 2000, 5 runs ('-' = at least one decoding failure):\n")

    comparison = compare_at_point(
        p, q, expansion_ratio=2.5, k=2000, runs=5, seed=11,
        codes=DEFAULT_CODES, tx_models=DEFAULT_TX_MODELS,
    )
    print(format_comparison_table(
        comparison.values,
        row_order=list(DEFAULT_TX_MODELS),
        column_order=list(DEFAULT_CODES),
    ))

    tx_model, code, value = comparison.best()
    print(f"\nbest combination on this channel: {code} + {tx_model} "
          f"(inefficiency {value:.3f})")
    print("paper's headline recommendations: RSE needs tx_model_5 (interleaving); "
          "LDGM codes need a random schedule (tx_model_2 / tx_model_4 / tx_model_6); "
          "tx_model_1 and tx_model_3 are of little interest.")


if __name__ == "__main__":
    arguments = [float(value) for value in sys.argv[1:3]]
    main(*arguments)
