#!/usr/bin/env python3
"""Quickstart: encode an object, simulate a lossy broadcast, read the metrics.

This walks through the three layers of the library in ~60 lines:

1. the FEC codes themselves (encode / decode real payloads),
2. the paper's simulation pipeline (scheduler -> Gilbert channel -> decoder),
3. a small (p, q) grid sweep rendered as an appendix-style table.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import ascii_surface, format_grid_table
from repro.channel import GilbertChannel
from repro.core import SimulationConfig, simulate_grid, simulate_once
from repro.fec import make_code


def encode_decode_demo() -> None:
    """Encode 100 packets with LDGM Staircase and recover them from a subset."""
    rng = np.random.default_rng(7)
    k, ratio = 100, 1.5
    code = make_code("ldgm-staircase", k=k, expansion_ratio=ratio, seed=42)

    payloads = [bytes(rng.integers(0, 256, size=1024, dtype=np.uint8)) for _ in range(k)]
    encoded = code.new_encoder().encode(payloads)
    print(f"encoded {k} source packets into {len(encoded)} packets "
          f"(expansion ratio {code.expansion_ratio:.1f})")

    # Lose 25% of the packets, deliver the rest in random order.
    survivors = [i for i in range(code.n) if rng.random() > 0.25]
    rng.shuffle(survivors)
    decoder = code.new_decoder()
    used = 0
    for index in survivors:
        used += 1
        if decoder.add_packet(index, encoded[index]):
            break
    assert decoder.source_payloads() == payloads
    print(f"decoded after {used} received packets "
          f"(inefficiency ratio {used / k:.3f})\n")


def single_run_demo() -> None:
    """One simulated transmission over a bursty Gilbert channel."""
    config = SimulationConfig(
        code="ldgm-triangle", tx_model="tx_model_4", k=2000, expansion_ratio=2.5
    )
    result = simulate_once(config, p=0.05, q=0.3, seed=1)
    channel = GilbertChannel(0.05, 0.3)
    print(f"channel: {channel} (mean burst {channel.mean_burst_length:.1f} packets)")
    print(f"decoded: {result.decoded}, inefficiency ratio {result.inefficiency_ratio:.3f}, "
          f"received {result.n_received}/{result.n_sent} packets\n")


def grid_demo() -> None:
    """A small (p, q) sweep, like one panel of the paper's 3-D figures."""
    config = SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=1000, expansion_ratio=2.5
    )
    grid = simulate_grid(
        config,
        p_values=[0.0, 0.01, 0.05, 0.20],
        q_values=[0.1, 0.5, 1.0],
        runs=5,
        seed=3,
    )
    print(format_grid_table(grid, title="LDGM Staircase, Tx_model_2, ratio 2.5 "
                                        "(mean inefficiency ratio; '-' = decoding failed)"))
    print()
    print(ascii_surface(grid))


if __name__ == "__main__":
    encode_decode_demo()
    single_run_demo()
    grid_demo()
