#!/usr/bin/env python3
"""Planning a transfer over a *known* channel (section 6.2.1 of the paper).

Scenario: a 50 MB object must be pushed from Amherst (MA) to Los Angeles.
Yajnik et al. measured that path and fitted Gilbert parameters
p = 0.0109, q = 0.7915 (1.35% global loss).  Given those parameters the
operator wants to know

1. which (FEC code, transmission model, expansion ratio) tuple to use, and
2. how many packets actually need to be transmitted (``n_sent``), since
   sending the full FEC expansion would waste bandwidth.

Run with:  python examples/channel_planning.py
"""

from repro.analysis import recommendation_report
from repro.channel import GilbertChannel
from repro.core import optimal_nsent_for_object, worked_example_section_6_2_1
from repro.core.recommendations import recommend_for_channel

#: Gilbert parameters of the Amherst -> Los Angeles path (Yajnik et al.).
P, Q = 0.0109, 0.7915
OBJECT_SIZE = 50 * 10**6
PACKET_SIZE = 1024


def main() -> None:
    channel = GilbertChannel(P, Q)
    print(f"channel: p={P}, q={Q} -> global loss {channel.global_loss_probability:.2%}, "
          f"mean burst {channel.mean_burst_length:.2f} packets\n")

    # 1. Rank candidate (code, tx model, ratio) tuples by simulation.
    print(recommendation_report(P, Q, k=2000, runs=6, seed=1, top=5))

    # 2. Derive n_sent for the tuple the simulation ranked first.
    best = recommend_for_channel(P, Q, k=2000, runs=6, seed=1)[0]
    plan = optimal_nsent_for_object(
        OBJECT_SIZE,
        PACKET_SIZE,
        best.mean_inefficiency,
        P,
        Q,
        expansion_ratio=best.expansion_ratio,
    )
    print(f"\nbest tuple: {best.code} + {best.tx_model} at ratio {best.expansion_ratio}")
    print(f"object: {OBJECT_SIZE} bytes -> k = {plan.k} packets, n = {plan.n} packets")
    print(f"optimal n_sent = {plan.nsent} packets "
          f"({plan.nsent_with_margin} with a safety margin)")
    print(f"saved packets vs. sending everything: {plan.saved_packets} "
          f"({plan.saved_fraction:.1%} of the full transmission)")

    # 3. The paper's own worked example, using the inefficiency the authors measured.
    paper_plan = worked_example_section_6_2_1()
    print("\npaper's worked example (LDGM Staircase, Tx_model_2, ratio 1.5):")
    print(f"  n_sent = {paper_plan.nsent} packets (paper: ~50 041), "
          f"with margin {paper_plan.nsent_with_margin} (paper: 55 000), "
          f"instead of n = {paper_plan.n} (paper: ~73 243)")


if __name__ == "__main__":
    main()
