"""Ablation A3 -- iterative (peeling) vs ML (Gaussian elimination) decoding.

The paper evaluates only the iterative decoder.  This ablation measures, on
the same received-packet sequences, how many packets the ML decoder would
have needed: the gap is the share of the inefficiency attributable to the
decoding algorithm rather than to the code structure itself.
"""

import numpy as np

from _shared import BENCH_SEED, results_path
from repro.channel.gilbert import GilbertChannel
from repro.fec import make_code
from repro.fec.ldgm.ml_decoder import ml_necessary_count
from repro.scheduling import make_tx_model

#: Smaller k than the grid benches: each ML probe is a GF(2) rank computation.
K = 600
RUNS = 5


def run_comparison():
    rows = []
    for code_name in ("ldgm-staircase", "ldgm-triangle"):
        code = make_code(code_name, k=K, expansion_ratio=2.5, seed=BENCH_SEED)
        tx_model = make_tx_model("tx_model_4")
        channel = GilbertChannel(0.05, 0.5)
        iterative_ratios = []
        ml_ratios = []
        for run in range(RUNS):
            rng = np.random.default_rng(np.random.SeedSequence([BENCH_SEED, run]))
            schedule = tx_model.schedule(code.layout, rng)
            received = schedule[~channel.loss_mask(schedule.size, rng)]
            order = [int(index) for index in received]

            decoder = code.new_symbolic_decoder()
            iterative_needed = decoder.add_packets(order)
            ml_needed = ml_necessary_count(code.matrix, order)
            if not decoder.is_complete or ml_needed is None:
                continue
            iterative_ratios.append(iterative_needed / K)
            ml_ratios.append(ml_needed / K)
        rows.append((code_name, float(np.mean(iterative_ratios)), float(np.mean(ml_ratios))))
    return rows


def bench_ablation_ml_decoding(run_once):
    rows = run_once(run_comparison)
    lines = [f"Ablation A3: iterative vs ML decoding (k = {K}, Tx_model_4, ratio 2.5, "
             "Gilbert p=0.05 q=0.5)", ""]
    for code_name, iterative, ml in rows:
        lines.append(
            f"  {code_name:15s} iterative {iterative:.3f}  ML {ml:.3f}  "
            f"decoder overhead {iterative - ml:+.3f}"
        )
    report = "\n".join(lines)
    print(report)
    results_path("ablation_ml_decoding.txt").write_text(report, encoding="utf-8")

    for code_name, iterative, ml in rows:
        # ML can never need more packets than the iterative decoder, and an
        # ideal MDS code would need exactly 1.0.
        assert 1.0 <= ml <= iterative
        # The iterative decoder's extra cost is moderate (paper-level codes
        # operate around 5-15% overhead).
        assert iterative - ml < 0.25
