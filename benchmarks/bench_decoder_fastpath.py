"""Microbenchmark: incremental decode loop vs the vectorised fast path.

Measures end-to-end simulation throughput (runs/second: schedule + channel
+ decode to ``n_necessary``) per code family at k = 1000, comparing

* **serial** -- the incremental reference path (``fastpath=False``: one
  ``Simulator.run`` per run, per-packet ``add_packet`` loop), and
* **fastpath** -- :func:`repro.fastpath.simulate_batch` decoding a whole
  work-unit-sized batch of runs at once.

Every sample is checked for bit-identity before timing.  The measured
throughputs are appended to ``benchmarks/BENCH.json`` so the
performance trajectory of the decode path is recorded PR over PR (the
acceptance bar for this PR: >= 10x for ldgm-staircase at k = 1000 against
the pre-PR serial path, whose throughput is recorded in the entry's
``baseline`` block).

Run directly::

    PYTHONPATH=src python benchmarks/bench_decoder_fastpath.py
"""

from __future__ import annotations

import json
import platform
import sys
import time
from datetime import date
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _shared import BENCH_SEED  # noqa: E402

from repro.channel.gilbert import GilbertChannel
from repro.core.simulator import Simulator
from repro.fastpath import simulate_batch
from repro.fec.registry import make_code
from repro.scheduling.registry import make_tx_model

#: Code families benchmarked (name, expansion ratio).  Repetition needs an
#: integer ratio; everything else uses the paper's 2.5.
FAMILIES = [
    ("ldgm-staircase", 2.5),
    ("ldgm-triangle", 2.5),
    ("ldgm", 2.5),
    ("rse", 2.5),
    ("repetition", 2.0),
]

K = 1000
TX_MODEL = "tx_model_2"
P, Q = 0.05, 0.5

#: Runs per timing sample.  The fast path is timed on a work-unit-sized
#: batch; the serial loop on fewer runs (it is the slow side).
SERIAL_RUNS = 40
BATCH_RUNS = 960

#: Version-controlled performance ledger (benchmarks/results/ is for
#: regenerable CSV output and is gitignored; the trajectory is not).
BENCH_JSON = Path(__file__).parent / "BENCH.json"


def _rngs(count: int):
    return [
        np.random.default_rng(np.random.SeedSequence([BENCH_SEED, run]))
        for run in range(count)
    ]


def _measure(family: str, ratio: float) -> dict:
    code = make_code(family, k=K, expansion_ratio=ratio, seed=1)
    tx_model = make_tx_model(TX_MODEL)
    channel = GilbertChannel(P, Q)

    # Equivalence gate before timing anything.
    simulator = Simulator(code, tx_model, channel)
    reference = [simulator.run(rng) for rng in _rngs(20)]
    if simulate_batch(code, tx_model, channel, _rngs(20)) != reference:
        raise AssertionError(f"fastpath diverged from the serial path for {family}")

    best_serial = 0.0
    for _ in range(2):
        serial_simulator = Simulator(code, tx_model, channel)
        started = time.perf_counter()
        for rng in _rngs(SERIAL_RUNS):
            serial_simulator.run(rng)
        elapsed = time.perf_counter() - started
        best_serial = max(best_serial, SERIAL_RUNS / elapsed)

    simulate_batch(code, tx_model, channel, _rngs(8))  # warm the prototype
    best_fast = 0.0
    for _ in range(2):
        started = time.perf_counter()
        simulate_batch(code, tx_model, channel, _rngs(BATCH_RUNS))
        elapsed = time.perf_counter() - started
        best_fast = max(best_fast, BATCH_RUNS / elapsed)

    return {
        "code": family,
        "expansion_ratio": ratio,
        "serial_runs_per_sec": round(best_serial, 1),
        "fastpath_runs_per_sec": round(best_fast, 1),
        "speedup": round(best_fast / best_serial, 2),
    }


def run_benchmark() -> dict:
    rows = [_measure(family, ratio) for family, ratio in FAMILIES]
    entry = {
        "benchmark": "decoder_fastpath",
        "date": date.today().isoformat(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "k": K,
        "tx_model": TX_MODEL,
        "channel": {"p": P, "q": Q},
        "serial_runs": SERIAL_RUNS,
        "batch_runs": BATCH_RUNS,
        "seed": BENCH_SEED,
        "results": rows,
    }
    return entry


def append_to_bench_json(entry: dict) -> Path:
    destination = BENCH_JSON
    if destination.exists():
        payload = json.loads(destination.read_text(encoding="utf-8"))
    else:
        payload = {"schema": 1, "entries": []}
    payload["entries"].append(entry)
    destination.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return destination


def main() -> int:
    entry = run_benchmark()
    print(f"decoder fastpath microbenchmark (k={K}, {TX_MODEL}, Gilbert p={P} q={Q})")
    for row in entry["results"]:
        print(
            f"  {row['code']:16s} serial {row['serial_runs_per_sec']:8.1f} runs/s   "
            f"fastpath {row['fastpath_runs_per_sec']:8.1f} runs/s   "
            f"speedup {row['speedup']:6.2f}x"
        )
    destination = append_to_bench_json(entry)
    print(f"recorded in {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
