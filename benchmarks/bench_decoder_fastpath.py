"""Microbenchmark: incremental decode loop vs the fast path, per kernel.

Measures end-to-end simulation throughput (runs/second: schedule + channel
+ decode to ``n_necessary``) per code family at k = 1000, comparing

* **serial** -- the incremental reference path (``fastpath=False``: one
  ``Simulator.run`` per run, per-packet ``add_packet`` loop), and
* **fastpath** -- :func:`repro.fastpath.simulate_batch_columnar` pushing a
  whole work-unit-sized batch of runs through the batched
  :mod:`repro.pipeline` run synthesis (whole-unit schedules, loss masks,
  received assembly) and the batch decode, once per available
  :mod:`repro.kernels` backend (the vectorised ``numpy`` reference with
  its chain-aware staircase cascade, plus whichever compiled backends --
  ``numba``, ``cext`` -- this machine can build).  The columnar
  ``RunResultBatch`` is exactly what the runner's work units consume, so
  the measurement covers result assembly too; per-run generator
  construction stays inside the timed region (as in every prior entry).

Every (kernel, family) sample is checked for bit-identity against the
serial path before timing -- including the multi-threaded samples, whose
row-parallel OpenMP decode must produce the exact same bytes as one
thread.  The measured throughputs are appended to ``benchmarks/BENCH.json``
(schema 6: schema 5's single-thread per-kernel columns pinned to
``kernel_threads=1`` for comparability with prior entries,
``threads_runs_per_sec*`` columns at the ``auto``-resolved team size,
core-count / OpenMP provenance and a fleet wall-clock row, plus an
``adaptive`` row comparing one sequential-stopping sweep of a
paper-shaped grid against the exhaustive fixed sweep) so the performance
trajectory of the decode path is recorded PR over PR; the ``fastpath_runs_per_sec``
headline is the ``auto``-selected backend, and
``speedup_vs_prev_fastpath`` compares it against the previous entry's
headline on the same seeds and batch size.

Run directly::

    PYTHONPATH=src python benchmarks/bench_decoder_fastpath.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from datetime import date
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _shared import BENCH_SEED  # noqa: E402

from repro.channel.gilbert import GilbertChannel
from repro.core.simulator import Simulator
from repro.fastpath import simulate_batch, simulate_batch_columnar
from repro.fec.registry import make_code
from repro.kernels import (
    available_backends,
    cext_openmp_enabled,
    default_backend_name,
    physical_cores,
    resolve_thread_count,
)
from repro.scheduling.registry import make_tx_model
from repro.seeds import get_scheme

#: Code families benchmarked (name, expansion ratio).  Repetition needs an
#: integer ratio; everything else uses the paper's 2.5.
FAMILIES = [
    ("ldgm-staircase", 2.5),
    ("ldgm-triangle", 2.5),
    ("ldgm", 2.5),
    ("rse", 2.5),
    ("repetition", 2.0),
]

K = 1000
TX_MODEL = "tx_model_2"
P, Q = 0.05, 0.5

#: Runs per timing sample.  The fast path is timed on a work-unit-sized
#: batch; the serial loop on fewer runs (it is the slow side).
SERIAL_RUNS = 40
BATCH_RUNS = 960

#: Version-controlled performance ledger (benchmarks/results/ is for
#: regenerable CSV output and is gitignored; the trajectory is not).
BENCH_JSON = Path(__file__).parent / "BENCH.json"

#: Current ledger schema: 6 adds an ``adaptive`` row -- one adaptive
#: (sequential-stopping) sweep of a paper-shaped 14 x 14 grid at the
#: default confidence against the exhaustive fixed sweep on the same
#: seeds, recording the run budget executed vs exhaustive, the saved
#: fraction and the wall-clock of both.  Schema 5 added multi-threaded
#: kernel columns (``threads_runs_per_sec_by_kernel`` /
#: ``unit_threads_runs_per_sec_by_kernel`` at the ``auto``-resolved
#: OpenMP team size, with the historical per-kernel columns pinned to
#: ``kernel_threads=1`` so they stay comparable across entries),
#: core-count + OpenMP provenance and a fleet wall-clock row, on top of
#: schema 3's per-seed-scheme columns (``unit_runs_per_sec*``) and
#: schema 2's per-kernel columns and numba / C-compiler provenance
#: (schema 4 was the store benchmark's bump).
BENCH_SCHEMA = 6


def _bench_kernels() -> list[str]:
    """Backends measured: the numpy reference plus compiled ones.

    The ``python`` loop backend is exercised by the test suite, not the
    benchmark -- uncompiled Python loops at k = 1000 would only slow the
    ledger down without informing any decision.
    """
    return [name for name in available_backends() if name != "python"]


def _rngs(count: int):
    return [
        np.random.default_rng(np.random.SeedSequence([BENCH_SEED, run]))
        for run in range(count)
    ]


def _unit_streams(count: int):
    """Whole-batch streams under the counter-based unit seed scheme.

    Stream construction stays inside the timed region, mirroring the
    per-run measurement (whose generator construction is also timed) --
    that per-run construction cost is part of what the unit scheme
    removes.
    """
    return get_scheme("unit").unit_streams(BENCH_SEED, (), 0, count)


def _measure(family: str, ratio: float, kernels: list[str], threads: int) -> dict:
    code = make_code(family, k=K, expansion_ratio=ratio, seed=1)
    tx_model = make_tx_model(TX_MODEL)
    channel = GilbertChannel(P, Q)

    # Equivalence gate before timing anything, per kernel -- at one thread
    # and at the measured team size (row-parallel decode must be exact).
    simulator = Simulator(code, tx_model, channel)
    reference = [simulator.run(rng) for rng in _rngs(20)]
    for kernel in kernels:
        for team in {1, threads}:
            batch = simulate_batch(
                code, tx_model, channel, _rngs(20), kernel=kernel, kernel_threads=team
            )
            if batch != reference:
                raise AssertionError(
                    f"fastpath[{kernel}, threads={team}] diverged from the "
                    f"serial path for {family}"
                )

    best_serial = 0.0
    for _ in range(2):
        serial_simulator = Simulator(code, tx_model, channel)
        started = time.perf_counter()
        for rng in _rngs(SERIAL_RUNS):
            serial_simulator.run(rng)
        elapsed = time.perf_counter() - started
        best_serial = max(best_serial, SERIAL_RUNS / elapsed)

    # Unit-scheme determinism gate: identical streams, identical results.
    unit_reference = simulate_batch_columnar(
        code, tx_model, channel, _unit_streams(20), kernel=kernels[0]
    )
    for kernel in kernels:
        repeated = simulate_batch_columnar(
            code, tx_model, channel, _unit_streams(20), kernel=kernel
        )
        if not (
            np.array_equal(repeated.n_necessary, unit_reference.n_necessary)
            and np.array_equal(repeated.n_received, unit_reference.n_received)
        ):
            raise AssertionError(
                f"unit scheme[{kernel}] is not deterministic for {family}"
            )

    def _time_batch(kernel: str, streams_factory, team: int) -> float:
        best = 0.0
        for _ in range(2):
            started = time.perf_counter()
            simulate_batch_columnar(
                code,
                tx_model,
                channel,
                streams_factory(BATCH_RUNS),
                kernel=kernel,
                kernel_threads=team,
            )
            elapsed = time.perf_counter() - started
            best = max(best, BATCH_RUNS / elapsed)
        return round(best, 1)

    # Historical columns stay pinned to one thread so the ledger's
    # trajectory is apples-to-apples across entries; the threaded columns
    # carry the ``auto``-resolved team size of this machine.
    by_kernel: dict[str, float] = {}
    unit_by_kernel: dict[str, float] = {}
    threads_by_kernel: dict[str, float] = {}
    unit_threads_by_kernel: dict[str, float] = {}
    for kernel in kernels:
        simulate_batch_columnar(code, tx_model, channel, _rngs(8), kernel=kernel)  # warm
        by_kernel[kernel] = _time_batch(kernel, _rngs, 1)
        unit_by_kernel[kernel] = _time_batch(kernel, _unit_streams, 1)
        if threads > 1:
            threads_by_kernel[kernel] = _time_batch(kernel, _rngs, threads)
            unit_threads_by_kernel[kernel] = _time_batch(kernel, _unit_streams, threads)
        else:
            # One physical core: the team is one thread by construction,
            # so re-timing would just duplicate the single-thread sample.
            threads_by_kernel[kernel] = by_kernel[kernel]
            unit_threads_by_kernel[kernel] = unit_by_kernel[kernel]

    headline_kernel = default_backend_name()
    if headline_kernel not in by_kernel:
        headline_kernel = "numpy"
    headline = by_kernel[headline_kernel]
    unit_headline = unit_by_kernel[headline_kernel]
    threads_headline = threads_by_kernel[headline_kernel]
    return {
        "code": family,
        "expansion_ratio": ratio,
        "serial_runs_per_sec": round(best_serial, 1),
        "fastpath_runs_per_sec": headline,
        "kernel": headline_kernel,
        "fastpath_runs_per_sec_by_kernel": by_kernel,
        "unit_runs_per_sec": unit_headline,
        "unit_runs_per_sec_by_kernel": unit_by_kernel,
        "unit_speedup_vs_per_run": round(unit_headline / headline, 2),
        "threads_runs_per_sec": threads_headline,
        "threads_runs_per_sec_by_kernel": threads_by_kernel,
        "unit_threads_runs_per_sec_by_kernel": unit_threads_by_kernel,
        "threads_speedup_vs_single": round(threads_headline / headline, 2),
        "speedup": round(headline / best_serial, 2),
    }


def _provenance(threads: int) -> dict:
    try:
        from repro.kernels.numba_backend import numba_version

        numba = numba_version()
    except ImportError:
        numba = None
    try:
        from repro.kernels.cext import compiler

        cext_compiler = compiler()
    except ImportError:  # pragma: no cover - cext module always importable
        cext_compiler = None
    return {
        "numba": numba,
        "cext_compiler": cext_compiler,
        "cext_openmp": cext_openmp_enabled(),
        "kernel_threads": threads,
        "physical_cores": physical_cores(),
        "cpu_count": os.cpu_count(),
    }


def _measure_fleet(threads: int) -> dict:
    """One multi-core fleet member on the shared-memory thread executor.

    Wall-clock for a complete small ldgm-staircase sweep executed the way
    a fleet worker runs it: units claimed under TTL leases from a sqlite
    store, fanned out over the thread executor, compiled kernels threading
    the rows of each unit (``auto`` keeps executor workers x kernel
    threads within the socket).
    """
    import tempfile

    from repro.core.config import SimulationConfig
    from repro.core.sweep import simulate_grid
    from repro.store import resolve_store

    config = SimulationConfig(
        code="ldgm-staircase", tx_model=TX_MODEL, k=K, expansion_ratio=2.5
    )
    p_values = [0.01, 0.05, 0.1]
    q_values = [0.5]
    runs = 120
    workers = min(2, max(1, os.cpu_count() or 1))
    with tempfile.TemporaryDirectory() as tmp:
        store = resolve_store(f"sqlite:{tmp}/fleet.db")
        try:
            started = time.perf_counter()
            simulate_grid(
                config,
                p_values,
                q_values,
                runs=runs,
                seed=BENCH_SEED,
                executor="thread",
                workers=workers,
                kernel_threads="auto",
                cache=store,
                fleet=True,
            )
            elapsed = time.perf_counter() - started
        finally:
            store.close()
    total_runs = runs * len(p_values) * len(q_values)
    return {
        "code": "ldgm-staircase",
        "executor": "thread",
        "fleet_members": 1,
        "workers": workers,
        "kernel_threads": threads,
        "grid_points": len(p_values) * len(q_values),
        "runs_per_point": runs,
        "wall_clock_sec": round(elapsed, 3),
        "runs_per_sec": round(total_runs / elapsed, 1),
    }


def _measure_adaptive(threads: int) -> dict:
    """Adaptive sweep vs the exhaustive fixed sweep on a paper-shaped grid.

    One ldgm-staircase sweep of the paper's 14 x 14 (p, q) grid at k = 1000
    with a 100-run budget: once adaptively (sequential stopping at the
    default confidence / CI width) and once exhaustively with the same
    seeds and unit boundaries.  What the ledger tracks is the executed
    fraction of the run budget -- the fastest run is the one never
    executed -- plus the wall-clock of both sides so the saved fraction is
    backed by a measured speedup.  Settled-cell bit-identity between the
    two sides is enforced by the test suite and the ``adaptive-sweeps``
    CI gate; the benchmark asserts only the acceptance floor (at most a
    third of the exhaustive budget executed).
    """
    from repro.adaptive import AdaptiveConfig
    from repro.channel.gilbert import paper_grid
    from repro.core.config import SimulationConfig
    from repro.runner.engine import run_adaptive, run_grid

    config = SimulationConfig(
        code="ldgm-staircase", tx_model=TX_MODEL, k=K, expansion_ratio=2.5
    )
    p_values, q_values = paper_grid()
    budget = 100
    cfg = AdaptiveConfig()

    started = time.perf_counter()
    grid = run_adaptive(
        config,
        p_values,
        q_values,
        runs=budget,
        seed=BENCH_SEED,
        adaptive=cfg,
        kernel_threads=threads,
    )
    adaptive_elapsed = time.perf_counter() - started
    meta = grid.metadata["adaptive"]

    started = time.perf_counter()
    run_grid(
        config,
        p_values,
        q_values,
        runs=budget,
        seed=BENCH_SEED,
        runs_per_unit=cfg.min_runs,
        kernel_threads=threads,
    )
    exhaustive_elapsed = time.perf_counter() - started

    if meta["executed_runs"] * 3 > meta["exhaustive_runs"]:
        raise AssertionError(
            f"adaptive sweep executed {meta['executed_runs']} of "
            f"{meta['exhaustive_runs']} runs -- more than a third of the "
            f"exhaustive budget"
        )
    return {
        "code": "ldgm-staircase",
        "grid_points": len(p_values) * len(q_values),
        "budget": budget,
        "confidence": cfg.confidence,
        "ci_width": cfg.ci_width,
        "rel_tol": cfg.rel_tol,
        "min_runs": cfg.min_runs,
        "executed_runs": meta["executed_runs"],
        "exhaustive_runs": meta["exhaustive_runs"],
        "saved_fraction": meta["saved_fraction"],
        "rounds": meta["rounds"],
        "settled_cells": int(np.asarray(meta["settled"]).sum()),
        "wall_clock_sec": round(adaptive_elapsed, 3),
        "exhaustive_wall_clock_sec": round(exhaustive_elapsed, 3),
        "wall_clock_speedup": round(exhaustive_elapsed / adaptive_elapsed, 2),
    }


def _previous_fastpath(payload: dict) -> dict:
    """Headline fastpath runs/sec per code of the ledger's last entry."""
    entries = payload.get("entries", [])
    if not entries:
        return {}
    return {
        row["code"]: row.get("fastpath_runs_per_sec")
        for row in entries[-1].get("results", [])
    }


def run_benchmark() -> dict:
    kernels = _bench_kernels()
    # The team size every threaded sample uses: ``auto`` with no executor
    # divisor, i.e. the machine's physical cores (REPRO_KERNEL_THREADS
    # overrides).
    threads = resolve_thread_count()
    rows = [_measure(family, ratio, kernels, threads) for family, ratio in FAMILIES]
    entry = {
        "benchmark": "decoder_fastpath",
        "date": date.today().isoformat(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "k": K,
        "tx_model": TX_MODEL,
        "channel": {"p": P, "q": Q},
        "serial_runs": SERIAL_RUNS,
        "batch_runs": BATCH_RUNS,
        "seed": BENCH_SEED,
        "kernels": kernels,
        **_provenance(threads),
        "results": rows,
        "fleet": _measure_fleet(threads),
        "adaptive": _measure_adaptive(threads),
    }
    return entry


def append_to_bench_json(entry: dict) -> Path:
    destination = BENCH_JSON
    if destination.exists():
        payload = json.loads(destination.read_text(encoding="utf-8"))
    else:
        payload = {"schema": BENCH_SCHEMA, "entries": []}
    previous = _previous_fastpath(payload)
    for row in entry["results"]:
        prior = previous.get(row["code"])
        if prior:
            row["speedup_vs_prev_fastpath"] = round(
                row["fastpath_runs_per_sec"] / prior, 2
            )
    # Schema 2 adds fields to new entries without rewriting old ones.
    payload["schema"] = max(int(payload.get("schema", 1)), BENCH_SCHEMA)
    payload["entries"].append(entry)
    destination.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return destination


def main() -> int:
    entry = run_benchmark()
    print(
        f"decoder fastpath microbenchmark (k={K}, {TX_MODEL}, Gilbert p={P} q={Q}; "
        f"kernels: {', '.join(entry['kernels'])}; "
        f"threads={entry['kernel_threads']} of {entry['physical_cores']} cores, "
        f"OpenMP {'on' if entry['cext_openmp'] else 'off'})"
    )
    for row in entry["results"]:
        per_kernel = "   ".join(
            f"{name} {rate:8.1f}"
            for name, rate in row["fastpath_runs_per_sec_by_kernel"].items()
        )
        print(
            f"  {row['code']:16s} serial {row['serial_runs_per_sec']:8.1f} runs/s   "
            f"{per_kernel}   [{row['kernel']}] speedup {row['speedup']:6.2f}x"
        )
        per_kernel_unit = "   ".join(
            f"{name} {rate:8.1f}"
            for name, rate in row["unit_runs_per_sec_by_kernel"].items()
        )
        print(
            f"  {'':16s} unit scheme:              {per_kernel_unit}   "
            f"({row['unit_speedup_vs_per_run']:.2f}x vs per-run)"
        )
        per_kernel_threads = "   ".join(
            f"{name} {rate:8.1f}"
            for name, rate in row["threads_runs_per_sec_by_kernel"].items()
        )
        print(
            f"  {'':16s} {entry['kernel_threads']} thread(s):             "
            f"{per_kernel_threads}   "
            f"({row['threads_speedup_vs_single']:.2f}x vs 1 thread)"
        )
    fleet = entry["fleet"]
    print(
        f"  fleet: 1 member x {fleet['workers']} thread workers, "
        f"kernel_threads={fleet['kernel_threads']}: "
        f"{fleet['grid_points']} x {fleet['runs_per_point']} runs of "
        f"{fleet['code']} in {fleet['wall_clock_sec']:.2f}s "
        f"({fleet['runs_per_sec']:.1f} runs/s)"
    )
    adaptive = entry["adaptive"]
    print(
        f"  adaptive: {adaptive['grid_points']}-cell paper-shaped grid, "
        f"budget {adaptive['budget']}: {adaptive['executed_runs']}/"
        f"{adaptive['exhaustive_runs']} runs executed "
        f"({adaptive['saved_fraction']:.0%} saved, "
        f"{adaptive['rounds']} rounds) in {adaptive['wall_clock_sec']:.2f}s "
        f"vs exhaustive {adaptive['exhaustive_wall_clock_sec']:.2f}s "
        f"({adaptive['wall_clock_speedup']:.2f}x)"
    )
    destination = append_to_bench_json(entry)
    print(f"recorded in {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
