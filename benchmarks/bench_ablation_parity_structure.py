"""Ablation A1 -- parity structure: identity vs staircase vs triangle.

The paper's section 2.3.3 states that replacing the identity block of plain
LDGM by a staircase "largely improves the FEC code efficiency", and section
2.3.4 that the triangle helps further in some situations.  This ablation
quantifies both steps under Tx_model_4 (random order) and under Tx_model_2
with a bursty channel.
"""

import numpy as np

from _shared import BENCH_SCALE, BENCH_SEED, results_path
from repro.core.config import SimulationConfig
from repro.core.sweep import simulate_grid

VARIANTS = ("ldgm", "ldgm-staircase", "ldgm-triangle")


def run_ablation():
    results = {}
    for variant in VARIANTS:
        for tx_model, points in (("tx_model_4", ([0.0, 0.05], [0.5])),
                                 ("tx_model_2", ([0.05, 0.2], [0.5]))):
            config = SimulationConfig(
                code=variant, tx_model=tx_model, k=BENCH_SCALE.k, expansion_ratio=2.5
            )
            grid = simulate_grid(config, points[0], points[1], runs=4, seed=BENCH_SEED)
            results[(variant, tx_model)] = grid
    return results


def bench_ablation_parity_structure(run_once):
    results = run_once(run_ablation)
    lines = ["Ablation A1: parity structure (ratio 2.5, k = %d)" % BENCH_SCALE.k, ""]
    for (variant, tx_model), grid in results.items():
        lines.append(
            f"{variant:15s} {tx_model}: mean inefficiency "
            f"{grid.mean_over_decodable():.3f} over {grid.coverage:.0%} of the points"
        )
    report = "\n".join(lines)
    print(report)
    results_path("ablation_parity_structure.txt").write_text(report, encoding="utf-8")

    # Staircase must clearly beat plain LDGM (the paper's "large improvement").
    plain = results[("ldgm", "tx_model_4")].mean_over_decodable()
    staircase = results[("ldgm-staircase", "tx_model_4")].mean_over_decodable()
    triangle = results[("ldgm-triangle", "tx_model_4")].mean_over_decodable()
    assert staircase < plain - 0.05
    # Triangle is at least comparable to Staircase under random scheduling...
    assert triangle < staircase + 0.03
    # ...and better under bursty loss with sequential source transmission.
    staircase_bursty = results[("ldgm-staircase", "tx_model_2")].mean_over_decodable()
    triangle_bursty = results[("ldgm-triangle", "tx_model_2")].mean_over_decodable()
    assert triangle_bursty < staircase_bursty + 0.01
