"""Figure 13 / Table 9 -- Tx_model_6: 20% of the source packets + all parity.

Expected shape (paper, section 4.8): all codes have almost constant
performance across the decodable region, and -- unusually -- LDGM Staircase
outperforms LDGM Triangle.
"""

import numpy as np

from _shared import BENCH_RUNS, print_figure_report, run_figure_experiment


def bench_fig13_tx_model6(run_once):
    grids = run_once(run_figure_experiment, "fig13", runs=BENCH_RUNS)
    print_figure_report("fig13", grids)

    staircase = next(grid for label, grid in grids.items() if "staircase" in label)
    triangle = next(grid for label, grid in grids.items() if "triangle" in label)

    # Staircase beats Triangle under this scheme (the paper calls this "unusual").
    assert staircase.mean_over_decodable() < triangle.mean_over_decodable()
    # Staircase performance is essentially flat across the decodable region.
    assert staircase.max_inefficiency() - staircase.min_inefficiency() < 0.06
    # And it stays close to the paper's ~1.086 plateau.
    assert 1.0 < staircase.mean_over_decodable() < 1.2
