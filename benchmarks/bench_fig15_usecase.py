"""Figure 15 -- all (code, tx model) combinations at the Amherst-LA channel.

The paper fixes the channel at the Gilbert parameters fitted by Yajnik et
al. for an Amherst -> Los Angeles path (p = 0.0109, q = 0.7915) and compares
every transmission model and code at ratios 1.5 and 2.5.  Expected shape:
(LDGM Staircase, Tx_model_2, ratio 1.5) is the winner with an inefficiency
around 1.01, interleaving is what makes RSE competitive, and Tx_model_1 /
Tx_model_3 are far behind.
"""

import numpy as np

from _shared import BENCH_SCALE, BENCH_SEED, results_path
from repro.analysis.comparison import DEFAULT_CODES, DEFAULT_TX_MODELS, compare_at_point
from repro.analysis.paper_data import FIGURE15_CHANNEL
from repro.analysis.tables import format_comparison_table


def run_comparison(expansion_ratio: float):
    p, q = FIGURE15_CHANNEL
    return compare_at_point(
        p,
        q,
        expansion_ratio=expansion_ratio,
        k=BENCH_SCALE.k,
        codes=DEFAULT_CODES,
        tx_models=DEFAULT_TX_MODELS,
        runs=4,
        seed=BENCH_SEED,
    )


def bench_fig15_ratio_1_5(run_once):
    comparison = run_once(run_comparison, 1.5)
    report = "Figure 15(a): ratio 1.5, Amherst -> Los Angeles channel\n" + format_comparison_table(
        comparison.values, row_order=list(DEFAULT_TX_MODELS), column_order=list(DEFAULT_CODES)
    )
    print(report)
    results_path("fig15_ratio15.txt").write_text(report, encoding="utf-8")

    tx_model, code, value = comparison.best()
    # The best tuple uses a random or interleaved schedule, never tx_model_1/3.
    assert tx_model not in ("tx_model_1", "tx_model_3")
    assert value < 1.12
    # LDGM Staircase + Tx_model_2 is excellent on this channel (paper: ~1.011).
    assert comparison.values["tx_model_2"]["ldgm-staircase"] < 1.06


def bench_fig15_ratio_2_5(run_once):
    comparison = run_once(run_comparison, 2.5)
    report = "Figure 15(b): ratio 2.5, Amherst -> Los Angeles channel\n" + format_comparison_table(
        comparison.values, row_order=list(DEFAULT_TX_MODELS), column_order=list(DEFAULT_CODES)
    )
    print(report)
    results_path("fig15_ratio25.txt").write_text(report, encoding="utf-8")

    # Sequential schemes make the receiver wait for the end of the stream.
    assert comparison.values["tx_model_1"]["rse"] > 1.5
    # Interleaving is what makes RSE good.
    assert comparison.values["tx_model_5"]["rse"] < comparison.values["tx_model_1"]["rse"]
    # The random schemes keep the LDGM codes near their plateau.
    assert comparison.values["tx_model_4"]["ldgm-triangle"] < 1.25
    assert comparison.values["tx_model_6"]["ldgm-staircase"] < 1.2
