"""Figure 6 -- analytic decodability limits in the (p, q) plane.

Regenerates, for FEC expansion ratios 1.5 and 2.5, the boundary
``q = p * inef_ratio / (nsent/k - inef_ratio)`` and the decodable region
over the paper's 14 x 14 grid.
"""

import numpy as np

from _shared import results_path
from repro.channel.gilbert import paper_grid
from repro.channel.limits import decodable_region, minimum_q_for_decoding


def compute_limits():
    p_values, q_values = paper_grid()
    rows = []
    for ratio in (1.5, 2.5):
        region = decodable_region(p_values, q_values, ratio)
        boundary = [minimum_q_for_decoding(p, ratio) for p in p_values]
        rows.append((ratio, region, boundary))
    return p_values, q_values, rows


def bench_fig06_loss_limits(run_once):
    p_values, q_values, rows = run_once(compute_limits)
    lines = ["Figure 6: decoding-impossible region (number of packets received < k)", ""]
    for ratio, region, boundary in rows:
        lines.append(f"FEC expansion ratio = {ratio}")
        lines.append("  boundary q(p) = p / (ratio - 1):")
        lines.append("    p: " + "  ".join(f"{p:.2f}" for p in p_values))
        lines.append("    q: " + "  ".join(
            ("inf " if not np.isfinite(q) else f"{q:.2f}") for q in boundary
        ))
        coverage = region.mean()
        lines.append(f"  decodable share of the 14x14 grid: {coverage:.1%}")
        lines.append("")
    # Shape check from the paper: the feasible region grows with the ratio.
    region_15 = rows[0][1]
    region_25 = rows[1][1]
    assert region_25.sum() > region_15.sum()
    assert np.all(region_25[region_15])
    report = "\n".join(lines)
    print(report)
    results_path("fig06_report.txt").write_text(report, encoding="utf-8")
