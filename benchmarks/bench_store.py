"""Result-store microbenchmark: backend throughput and fleet wall-clock.

Two measurements, appended to ``benchmarks/BENCH.json`` as one entry of
``"benchmark": "store"`` (ledger schema 4 adds this entry kind next to
the decoder trajectory):

* **Backend throughput** -- ``put`` / ``get`` cells per second for the
  ``json-dir``, ``sqlite`` and ``http`` backends over 10 000 synthetic
  unit results (representative tiny-cell payloads; the store cost is
  what is being measured, not the simulation).  ``put`` goes through
  each backend's ``put_many`` -- a loop of atomic file replaces for
  json-dir, one batched transaction for sqlite, one JSON request for
  http -- which is exactly what a sweep's write-back amounts to.  The
  http row serves a sqlite store over loopback in-process, so its delta
  against the sqlite row is the cost of the network hop itself
  (JSON encode + HTTP round-trip per ``get``, one batch per ``put``).
* **Retry-layer overhead** -- the same sqlite put/get workload through
  a :class:`repro.resilience.RetryingStore` wrapper with no faults
  injected, so the number is pure wrapper cost (one extra frame and a
  closure per store call).  The resilience layer is on for every run
  that sets a failure policy, so this overhead has a <5% acceptance
  threshold: the wrapper must be cheap enough to leave enabled.
* **Fleet wall-clock** -- one grid executed by a single
  ``python -m repro run`` process versus two concurrent ``--fleet``
  processes sharing one sqlite store, and versus the same two workers
  reaching that sqlite store only through a ``cache serve`` HTTP server
  on loopback (the CSVs are asserted bit-identical in every
  configuration).  This measures the lease protocol's cost, not decode
  throughput: the entry records the host's CPU count, and with both
  workers pinned to one core (as in CI containers) the fleet can at
  best tie the single process, so the interesting number is the
  *overhead* -- wall-clock added by claim/heartbeat/release (plus, for
  the http rows, a JSON round-trip per store call) -- which stays
  modest because failed claims, not full rescans, drive result
  absorption.

Run with ``PYTHONPATH=src python benchmarks/bench_store.py``.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from datetime import date
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _shared import BENCH_SEED  # noqa: E402

from repro.core.config import SimulationConfig
from repro.resilience import FailurePolicy, RetryingStore
from repro.runner.units import UnitResult, WorkUnit
from repro.store import HttpStore, JsonDirStore, SqliteStore, StoreServer

#: Version-controlled performance ledger (shared with the decoder bench).
BENCH_JSON = Path(__file__).parent / "BENCH.json"

#: Schema 4 adds ``"benchmark": "store"`` entries (backend put/get
#: throughput and fleet wall-clock) to the decoder-trajectory ledger.
BENCH_SCHEMA = 4

#: Synthetic cells for the backend-throughput measurement.
CELLS = 10_000

#: Runs per unit in the synthetic payloads (sets the payload size).
RUNS_PER_UNIT = 4

#: The fleet measurement's workload: big enough that simulation, not
#: interpreter start-up, dominates the wall clock being compared.
FLEET_EXPERIMENT = "fig09"
FLEET_SCALE = "small"
FLEET_RUNS = 20


def _synthetic_items(count: int):
    """``(unit, result)`` pairs covering ``count`` distinct store keys.

    The units vary in ``seed_path`` (cell position), exactly how a sweep's
    units differ; payload floats come from one seeded generator so reruns
    of the benchmark write identical bytes.
    """
    config = SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=200, expansion_ratio=2.5
    )
    rng = np.random.default_rng(BENCH_SEED)
    ratios = rng.uniform(1.0, 3.0, size=(count, RUNS_PER_UNIT))
    received = rng.uniform(1.0, 3.0, size=(count, RUNS_PER_UNIT))
    items = []
    for index in range(count):
        seed_path = (index // 100, index % 100)
        unit = WorkUnit(
            config=config,
            p=0.05,
            q=0.5,
            seed_path=seed_path,
            run_start=0,
            run_stop=RUNS_PER_UNIT,
            base_seed=BENCH_SEED,
        )
        result = UnitResult(
            seed_path=seed_path,
            run_start=0,
            run_stop=RUNS_PER_UNIT,
            inefficiency_ratios=tuple(float(v) for v in ratios[index]),
            received_ratios=tuple(float(v) for v in received[index]),
            failures=0,
        )
        items.append((unit, result))
    return items


def _measure_backend(name: str, store, items) -> dict:
    started = time.perf_counter()
    written = store.put_many(items)
    put_elapsed = time.perf_counter() - started
    assert written == len(items)

    started = time.perf_counter()
    for unit, result in items:
        loaded = store.get(unit)
        assert loaded == result
    get_elapsed = time.perf_counter() - started

    row = {
        "backend": name,
        "cells": len(items),
        "put_cells_per_sec": round(len(items) / put_elapsed, 1),
        "get_cells_per_sec": round(len(items) / get_elapsed, 1),
        "size_bytes": store.size_bytes(),
    }
    store.close()
    return row


def _best_readback(store, items, passes: int = 3) -> float:
    """Best-of-``passes`` seconds for a full get() readback.

    The minimum over warm passes is what isolates per-call wrapper cost;
    a single cold pass is dominated by page-cache and filesystem noise.
    """
    best = None
    for _ in range(passes):
        started = time.perf_counter()
        for unit, result in items:
            assert store.get(unit) == result
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _measure_retry_overhead(workdir: Path, items) -> dict:
    """RetryingStore cost on a fault-free sqlite workload.

    Raw and wrapped runs use separate databases so neither benefits from
    the other's page cache.  The readback (one store call per cell, the
    shape of a resumed sweep's cache probe) is the per-call hot path
    being compared; writes happen once per store before timing starts.
    """
    raw = SqliteStore(workdir / "retry_raw.db")
    assert raw.put_many(items) == len(items)
    raw_elapsed = _best_readback(raw, items)
    raw.close()

    wrapped = RetryingStore.wrap(
        SqliteStore(workdir / "retry_wrapped.db"), FailurePolicy()
    )
    assert wrapped.put_many(items) == len(items)
    wrapped_elapsed = _best_readback(wrapped, items)
    wrapped.close()

    return {
        "backend": "sqlite",
        "cells": len(items),
        "raw_sec": round(raw_elapsed, 3),
        "retrying_sec": round(wrapped_elapsed, 3),
        "overhead_pct": round(
            100.0 * (wrapped_elapsed - raw_elapsed) / raw_elapsed, 1
        ),
    }


def _measure_http_backend(workdir: Path, items) -> dict:
    """Throughput through the http backend over an in-process server.

    Fronts the same sqlite backend the ``sqlite`` row measures directly,
    so the two rows differ only by the loopback HTTP hop.
    """
    inner = SqliteStore(workdir / "http_inner.db")
    server = StoreServer(inner, port=0).start()
    try:
        client = HttpStore(f"{server.host}:{server.port}")
        return _measure_backend("http", client, items)
    finally:
        server.shutdown()
        inner.close()


def _run_cli(argv, cwd) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=cwd,
    )


def _measure_fleet(workdir: Path) -> dict:
    base = (
        "run", FLEET_EXPERIMENT, "--scale", FLEET_SCALE,
        "--runs", str(FLEET_RUNS), "--quiet",
    )

    started = time.perf_counter()
    single = _run_cli(
        (*base, "--store", f"sqlite:{workdir}/single.db",
         "--csv-dir", str(workdir / "csv_single")),
        workdir,
    )
    single.communicate()
    single_elapsed = time.perf_counter() - started
    assert single.returncode == 0

    started = time.perf_counter()
    workers = [
        _run_cli(
            (*base, "--store", f"sqlite:{workdir}/fleet.db", "--fleet",
             "--worker-id", f"w{index}",
             "--csv-dir", str(workdir / f"csv_w{index}")),
            workdir,
        )
        for index in range(2)
    ]
    for worker in workers:
        worker.communicate()
    fleet_elapsed = time.perf_counter() - started
    assert all(worker.returncode == 0 for worker in workers)

    # Same two-worker fleet, but the sqlite store now sits behind an
    # in-process `cache serve` HTTP server on loopback -- the multi-host
    # deployment shape, minus the physical network.
    inner = SqliteStore(workdir / "http_fleet.db")
    server = StoreServer(inner, port=0).start()
    try:
        started = time.perf_counter()
        workers = [
            _run_cli(
                (*base, "--store", f"http:{server.host}:{server.port}",
                 "--fleet", "--worker-id", f"h{index}",
                 "--csv-dir", str(workdir / f"csv_h{index}")),
                workdir,
            )
            for index in range(2)
        ]
        for worker in workers:
            worker.communicate()
        http_elapsed = time.perf_counter() - started
        assert all(worker.returncode == 0 for worker in workers)
    finally:
        server.shutdown()
        inner.close()

    references = sorted((workdir / "csv_single").glob("*.csv"))
    assert references
    for prefix in ("csv_w", "csv_h"):
        for index in range(2):
            twins = sorted((workdir / f"{prefix}{index}").glob("*.csv"))
            assert [t.name for t in twins] == [r.name for r in references]
            for twin, reference in zip(twins, references):
                assert twin.read_bytes() == reference.read_bytes(), "fleet != single"

    return {
        "experiment": FLEET_EXPERIMENT,
        "scale": FLEET_SCALE,
        "runs": FLEET_RUNS,
        "cpus": os.cpu_count(),
        "single_process_sec": round(single_elapsed, 2),
        "fleet_2_workers_sec": round(fleet_elapsed, 2),
        "fleet_overhead_pct": round(
            100.0 * (fleet_elapsed - single_elapsed) / single_elapsed, 1
        ),
        "http_fleet_2_workers_sec": round(http_elapsed, 2),
        "http_fleet_overhead_pct": round(
            100.0 * (http_elapsed - single_elapsed) / single_elapsed, 1
        ),
    }


def run_benchmark() -> dict:
    items = _synthetic_items(CELLS)
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        backends = [
            _measure_backend("json-dir", JsonDirStore(tmp / "jd"), items),
            _measure_backend("sqlite", SqliteStore(tmp / "bench.db"), items),
            _measure_http_backend(tmp, items),
        ]
        retry = _measure_retry_overhead(tmp, items)
        fleet = _measure_fleet(tmp)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "benchmark": "store",
        "date": date.today().isoformat(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cells": CELLS,
        "runs_per_unit": RUNS_PER_UNIT,
        "seed": BENCH_SEED,
        "backends": backends,
        "retry": retry,
        "fleet": fleet,
    }


def append_to_bench_json(entry: dict) -> Path:
    destination = BENCH_JSON
    if destination.exists():
        payload = json.loads(destination.read_text(encoding="utf-8"))
    else:
        payload = {"schema": BENCH_SCHEMA, "entries": []}
    # Schema 4 adds an entry kind; old entries are not rewritten.
    payload["schema"] = max(int(payload.get("schema", 1)), BENCH_SCHEMA)
    payload["entries"].append(entry)
    destination.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return destination


def main() -> int:
    entry = run_benchmark()
    print(f"result-store microbenchmark ({entry['cells']} cells)")
    for row in entry["backends"]:
        print(
            f"  {row['backend']:8s} put {row['put_cells_per_sec']:9.1f} cells/s   "
            f"get {row['get_cells_per_sec']:9.1f} cells/s   "
            f"({row['size_bytes'] / 1024:.0f} KiB)"
        )
    retry = entry["retry"]
    print(
        f"  retry    raw {retry['raw_sec']:.3f}s vs wrapped "
        f"{retry['retrying_sec']:.3f}s ({retry['overhead_pct']:+.1f}% overhead)"
    )
    fleet = entry["fleet"]
    print(
        f"  fleet ({fleet['experiment']}/{fleet['scale']}, runs={fleet['runs']}, "
        f"{fleet['cpus']} cpu): single {fleet['single_process_sec']:.2f}s vs "
        f"2 workers {fleet['fleet_2_workers_sec']:.2f}s "
        f"({fleet['fleet_overhead_pct']:+.1f}% wall-clock, CSVs bit-identical)"
    )
    print(
        f"  fleet over http (cache serve on loopback): 2 workers "
        f"{fleet['http_fleet_2_workers_sec']:.2f}s "
        f"({fleet['http_fleet_overhead_pct']:+.1f}% vs single, "
        f"CSVs bit-identical)"
    )
    destination = append_to_bench_json(entry)
    print(f"recorded in {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
