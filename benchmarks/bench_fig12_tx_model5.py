"""Figure 12 / Tables 7-8 -- Tx_model_5: packet interleaving (RSE).

Expected shape (paper, section 4.7): interleaving is the best transmission
scheme for RSE -- near-ideal at low loss, degrading gracefully as the global
loss rate grows, and clearly better than sequential transmission
(Tx_model_1) on bursty channels.
"""

import numpy as np

from _shared import BENCH_RUNS, BENCH_SCALE, BENCH_SEED, grid_value, print_figure_report, run_figure_experiment
from repro.core.config import SimulationConfig
from repro.core.sweep import simulate_grid


def bench_fig12_tx_model5(run_once):
    grids = run_once(run_figure_experiment, "fig12", runs=BENCH_RUNS)
    print_figure_report("fig12", grids)

    for label, grid in grids.items():
        # Perfect channel: exactly k packets needed (RSE is MDS + interleaved).
        assert np.allclose(grid.mean_inefficiency[0], 1.0), label
        # Inefficiency grows with the global loss rate but stays moderate.
        assert grid.max_inefficiency() < 1.45, label

    # Interleaving beats sequential transmission for RSE on a bursty channel.
    rse_25 = next(grid for label, grid in grids.items() if "2.5" in label)
    sequential = simulate_grid(
        SimulationConfig(code="rse", tx_model="tx_model_1", k=BENCH_SCALE.k, expansion_ratio=2.5),
        [0.05],
        [0.2],
        runs=BENCH_RUNS,
        seed=BENCH_SEED,
    )
    interleaved_value = grid_value(rse_25, 0.05, 0.2)
    sequential_value = sequential.mean_inefficiency[0, 0]
    assert np.isfinite(interleaved_value)
    assert (not np.isfinite(sequential_value)) or interleaved_value < sequential_value
