"""Section 6.2.1 -- optimal number of transmitted packets (worked example).

Reproduces the paper's 50 MB Amherst -> Los Angeles example end to end:
measure the inefficiency ratio of (LDGM Staircase, Tx_model_2, ratio 1.5)
on that channel, derive n_sent from equation 3, and verify by simulation
that truncating the transmission to n_sent still decodes reliably.
"""

import numpy as np

from _shared import BENCH_SCALE, BENCH_SEED, results_path
from repro.analysis.paper_data import FIGURE15_CHANNEL
from repro.channel.gilbert import GilbertChannel
from repro.core.config import SimulationConfig
from repro.core.metrics import CellStats
from repro.core.optimizer import optimal_nsent, worked_example_section_6_2_1
from repro.core.simulator import Simulator


def run_example():
    p, q = FIGURE15_CHANNEL
    channel = GilbertChannel(p, q)
    config = SimulationConfig(
        code="ldgm-staircase", tx_model="tx_model_2", k=BENCH_SCALE.k, expansion_ratio=1.5
    )
    code = config.build_code(seed=np.random.default_rng(BENCH_SEED))
    simulator = Simulator(code, config.build_tx_model(), channel)

    # 1. Measure the inefficiency ratio on the full transmission.
    stats = CellStats()
    for run in range(8):
        stats.add(simulator.run(np.random.default_rng(np.random.SeedSequence([BENCH_SEED, run]))))
    inefficiency = stats.mean_inefficiency

    # 2. Derive the optimal n_sent for this (code, tx model, channel).
    plan = optimal_nsent(
        config.k, inefficiency, channel.global_loss_probability, expansion_ratio=1.5
    )

    # 3. Verify: the truncated transmission still decodes for fresh runs.
    truncated = CellStats()
    for run in range(8):
        truncated.add(
            simulator.run(
                np.random.default_rng(np.random.SeedSequence([BENCH_SEED, 100 + run])),
                nsent=plan.nsent_with_margin,
            )
        )
    return inefficiency, plan, truncated


def bench_sec62_nsent(run_once):
    inefficiency, plan, truncated = run_once(run_example)
    paper_plan = worked_example_section_6_2_1()
    lines = [
        "Section 6.2.1: optimal n_sent on the Amherst -> Los Angeles channel",
        "",
        f"measured inefficiency (k={plan.k}): {inefficiency:.4f} (paper, k=20000: 1.011)",
        f"optimal n_sent: {plan.nsent} of n={plan.n} packets "
        f"({plan.nsent_with_margin} with margin, saving {plan.saved_fraction:.1%})",
        f"paper's own numbers: n_sent ~{paper_plan.nsent} of ~{paper_plan.n} packets "
        f"(55 000 with margin)",
        f"verification with truncated transmissions: "
        f"{truncated.runs - truncated.failures}/{truncated.runs} runs decoded",
    ]
    report = "\n".join(lines)
    print(report)
    results_path("sec62_report.txt").write_text(report, encoding="utf-8")

    assert np.isfinite(inefficiency) and inefficiency < 1.10
    assert plan.nsent < plan.n
    assert truncated.failures == 0
    # The paper's own worked example numbers are reproduced exactly.
    assert paper_plan.nsent in range(50035, 50050)
    assert abs(paper_plan.nsent_with_margin - 55000) < 600
