"""Encoding/decoding throughput of the codecs (section 6.2 / conclusion).

The paper notes that "LDGM codes are an order of magnitude faster than RSE"
and that this matters for large objects and small devices.  This benchmark
measures the payload encode and decode throughput of both codecs in this
pure-Python implementation.  Absolute numbers are far below the authors' C
codecs, but the *relative* ordering (LDGM much faster than RSE at the same
dimensions) is the property being checked.
"""

import numpy as np
import pytest

from repro.fec import make_code

K = 256
RATIO = 1.5
SYMBOL_SIZE = 1024


def make_payloads(seed: int = 0):
    rng = np.random.default_rng(seed)
    return [bytes(rng.integers(0, 256, size=SYMBOL_SIZE, dtype=np.uint8)) for _ in range(K)]


@pytest.mark.parametrize("code_name", ["rse", "ldgm-staircase", "ldgm-triangle"])
def bench_encode_throughput(benchmark, code_name):
    code = make_code(code_name, k=K, expansion_ratio=RATIO, seed=1)
    payloads = make_payloads()
    encoder = code.new_encoder()
    benchmark(encoder.encode, payloads)


@pytest.mark.parametrize("code_name", ["rse", "ldgm-staircase", "ldgm-triangle"])
def bench_decode_throughput(benchmark, code_name):
    code = make_code(code_name, k=K, expansion_ratio=RATIO, seed=1)
    payloads = make_payloads()
    encoded = code.new_encoder().encode(payloads)
    rng = np.random.default_rng(2)
    # Drop 20% of the packets; deliver the rest in random order.
    order = [int(i) for i in rng.permutation(code.n) if rng.random() > 0.2]

    def decode():
        decoder = code.new_decoder()
        for index in order:
            if decoder.add_packet(index, encoded[index]):
                break
        assert decoder.is_complete
        return decoder

    benchmark(decode)
