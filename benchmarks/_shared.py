"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The helpers
here keep the individual bench files short: they run the grid sweeps at the
"small" scale (k = 2000, 4 runs, 7 x 7 grid by default -- the paper uses
k = 20000, 100 runs, 14 x 14), print the rows/series the paper reports and
save the full grids as CSV under ``benchmarks/results/``.

Absolute numbers are not expected to match the paper exactly (smaller k,
fewer runs, re-implemented codecs); the *shape* -- who wins, by roughly what
factor, where decoding fails -- is what the harness is checked against, and
EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.csvio import grid_to_csv, label_slug
from repro.analysis.tables import format_grid_table
from repro.core.experiments import SCALES, ExperimentScale, get_experiment
from repro.core.metrics import GridResult
from repro.core.sweep import simulate_grid
from repro.kernels import normalize_thread_spec

#: Where benchmark outputs (CSV grids, text tables) are written.
RESULTS_DIR = Path(__file__).parent / "results"

#: Seed shared by every benchmark so reruns are comparable.
BENCH_SEED = 20050707  # the HAL submission date of the paper

#: Default scale for the benchmark harness.
BENCH_SCALE = SCALES["small"]

#: Reduced number of runs per grid point used by the heavier figures.
BENCH_RUNS = 3


def bench_workers() -> Optional[int]:
    """Worker count for the benchmark harness (``REPRO_BENCH_WORKERS``).

    Results are bit-identical for any worker count (the runner derives
    per-run seeds from the cell position), so parallelism is purely a
    wall-clock knob; unset or 1 keeps the serial executor.
    """
    value = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if not value:
        return None
    workers = int(value)
    return workers if workers > 1 else None


def bench_fastpath() -> bool:
    """Whether benchmarks use the vectorised batch decoder (default: yes).

    ``REPRO_BENCH_FASTPATH=0`` falls back to the incremental reference
    path; results are bit-identical either way, this is an equivalence
    escape hatch / baseline knob.
    """
    value = os.environ.get("REPRO_BENCH_FASTPATH", "").strip().lower()
    return value not in ("0", "false", "no", "off")


def bench_kernel() -> Optional[str]:
    """Kernel backend for the benchmark harness (``REPRO_KERNEL``).

    ``None`` lets :func:`repro.kernels.get_backend` resolve the default
    (numba when importable, else cext when a C compiler is present, else
    numpy); any registered backend name selects it explicitly.  Results
    are bit-identical across backends.
    """
    value = os.environ.get("REPRO_KERNEL", "").strip().lower()
    return value or None


def bench_kernel_threads() -> Optional[str]:
    """Kernel thread spec for the harness (``REPRO_KERNEL_THREADS``).

    A positive integer or ``auto`` selects the compiled kernels'
    row-parallel team size (OpenMP over independent runs); unset defers
    to the kernel layer's own resolution of the same variable.  Results
    are bit-identical at any thread count -- like workers, this is a
    pure wall-clock knob.
    """
    value = os.environ.get("REPRO_KERNEL_THREADS", "").strip().lower()
    return normalize_thread_spec(value or None)


def results_path(name: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def run_figure_experiment(
    experiment_id: str,
    *,
    runs: int = BENCH_RUNS,
    scale: ExperimentScale = BENCH_SCALE,
    seed: int = BENCH_SEED,
    workers: Optional[int] = None,
    fastpath: Optional[bool] = None,
    kernel: Optional[str] = None,
    kernel_threads: Optional[str] = None,
) -> Dict[str, GridResult]:
    """Run every configuration of a figure preset and persist the grids.

    ``workers`` (default: the ``REPRO_BENCH_WORKERS`` environment variable)
    fans the grid cells out over the runner's process-pool executor;
    ``fastpath`` (default: ``REPRO_BENCH_FASTPATH``, on unless set to 0)
    selects the vectorised batch decoder; ``kernel`` (default: the
    ``REPRO_KERNEL`` environment variable / auto) the kernel backend;
    ``kernel_threads`` (default: ``REPRO_KERNEL_THREADS``) the compiled
    kernels' row-parallel team size.
    """
    if workers is None:
        workers = bench_workers()
    if fastpath is None:
        fastpath = bench_fastpath()
    if kernel is None:
        kernel = bench_kernel()
    if kernel_threads is None:
        kernel_threads = bench_kernel_threads()
    spec = get_experiment(experiment_id)
    grids: Dict[str, GridResult] = {}
    for config in spec.scaled_configs(scale):
        grid = simulate_grid(
            config,
            scale.p_values,
            scale.q_values,
            runs=runs,
            seed=seed,
            workers=workers,
            fastpath=fastpath,
            kernel=kernel,
            kernel_threads=kernel_threads,
        )
        grids[config.display_label] = grid
        slug = label_slug(config.display_label)
        grid_to_csv(grid, results_path(f"{experiment_id}_{slug}.csv"))
    return grids


def summarize_grid(label: str, grid: GridResult) -> str:
    """One summary line per configuration: range and coverage of the surface."""
    return (
        f"{label:55s} inefficiency {grid.min_inefficiency():.3f}"
        f"..{grid.max_inefficiency():.3f} "
        f"(mean {grid.mean_over_decodable():.3f}), "
        f"decodable on {grid.coverage:.0%} of the grid"
    )


def print_figure_report(experiment_id: str, grids: Dict[str, GridResult]) -> str:
    """Print (and return) the per-figure report: summary lines + full tables."""
    spec = get_experiment(experiment_id)
    lines = [f"{spec.paper_reference}: {spec.title}", ""]
    for label, grid in grids.items():
        lines.append(summarize_grid(label, grid))
    lines.append("")
    for label, grid in grids.items():
        lines.append(format_grid_table(grid, title=label))
        lines.append("")
    report = "\n".join(lines)
    print(report)
    results_path(f"{experiment_id}_report.txt").write_text(report, encoding="utf-8")
    return report


def grid_value(grid: GridResult, p: float, q: float) -> float:
    """Mean inefficiency at the grid point nearest to (p, q)."""
    return grid.value_at(p, q)


def nearest_defined(values: Sequence[float]) -> Optional[float]:
    """First finite value in a sequence, or None."""
    for value in values:
        if np.isfinite(value):
            return float(value)
    return None
