"""Figure 10 -- Tx_model_3: parity packets sequentially, then source randomly.

Expected shape (paper, section 4.5): on a perfect channel the receiver has
to sit through (almost) the whole parity stream before the first source
packet completes decoding, so the inefficiency ratio at p = 0 is close to
the expansion ratio; overall the scheme is of little practical interest.
"""

import numpy as np

from _shared import BENCH_RUNS, print_figure_report, run_figure_experiment


def bench_fig10_tx_model3(run_once):
    grids = run_once(run_figure_experiment, "fig10", runs=BENCH_RUNS)
    print_figure_report("fig10", grids)

    for label, grid in grids.items():
        ratio = 2.5 if "2.5" in label else 1.5
        value_at_p0 = float(np.nanmean(grid.mean_inefficiency[0]))
        if ratio == 2.5:
            # All n - k = 1.5k parity packets arrive first, then a handful of
            # source packets complete decoding: inefficiency close to 1.5
            # (paper: "the inefficiency ratio is ~1.5 for ratio 2.5").
            assert 1.30 <= value_at_p0 <= 1.70, (label, value_at_p0)
        else:
            # At ratio 1.5 only 0.5k parity packets exist, so a substantial
            # number of source packets is still needed and the ratio stays
            # close to 1 (paper figure 10(d)-(f)).
            assert 1.00 <= value_at_p0 <= 1.40, (label, value_at_p0)
