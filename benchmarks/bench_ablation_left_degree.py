"""Ablation A2 -- left degree of the LDGM bipartite graph.

The paper fixes the left degree (edges per source packet) at 3.  This
ablation sweeps the degree from 2 to 6 for LDGM Staircase under Tx_model_4
and shows that 3 is indeed a sensible default: degree 2 is noticeably
weaker, large degrees bring no benefit to the iterative decoder.
"""

import numpy as np

from _shared import BENCH_SCALE, BENCH_SEED, results_path
from repro.core.config import SimulationConfig
from repro.core.sweep import sweep_parameter

DEGREES = (2, 3, 4, 5, 6)


def run_sweep():
    def make_config(degree: float) -> SimulationConfig:
        return SimulationConfig(
            code="ldgm-staircase",
            tx_model="tx_model_4",
            k=BENCH_SCALE.k,
            expansion_ratio=2.5,
            code_options={"left_degree": int(degree)},
        )

    return sweep_parameter(
        make_config,
        DEGREES,
        parameter_name="left degree",
        p=0.05,
        q=0.5,
        runs=5,
        seed=BENCH_SEED,
        label="LDGM Staircase, Tx_model_4, ratio 2.5",
    )


def bench_ablation_left_degree(run_once):
    series = run_once(run_sweep)
    lines = ["Ablation A2: left degree of the LDGM graph (Staircase, Tx_model_4, ratio 2.5)", ""]
    for degree, value, failures in zip(series.parameter_values, series.mean_inefficiency, series.failure_counts):
        status = "" if failures == 0 else f"  ({failures} failed runs)"
        lines.append(f"  degree {int(degree)}: mean inefficiency {value:.3f}{status}")
    lines.append("")
    lines.append(f"best degree: {int(series.best_parameter())} (paper uses 3)")
    report = "\n".join(lines)
    print(report)
    results_path("ablation_left_degree.txt").write_text(report, encoding="utf-8")

    values = dict(zip((int(v) for v in series.parameter_values), series.mean_inefficiency))
    assert np.all(series.failure_counts == 0)
    # Degree 3 must beat degree 2 and not be far from the best degree overall.
    assert values[3] < values[2]
    assert values[3] <= min(values.values()) + 0.03
