"""Appendix tables 1-9 -- numeric (p, q) tables for the key configurations.

Each benchmark regenerates one appendix table of the paper (same rows and
columns, smaller k and fewer runs), prints it in the paper's layout and
compares the measured values against the transcribed paper summary
(:mod:`repro.analysis.paper_data`): the decodable-region pattern and the
overall level must match in shape, not digit for digit.
"""

import numpy as np
import pytest

from _shared import BENCH_RUNS, BENCH_SCALE, BENCH_SEED, results_path
from repro.analysis.paper_data import PAPER_TABLES
from repro.analysis.tables import format_grid_table
from repro.core.config import SimulationConfig
from repro.core.sweep import simulate_grid


def run_table(table_id: str):
    summary = PAPER_TABLES[table_id]
    tx_options = {"source_fraction": 0.2} if summary.tx_model == "tx_model_6" else {}
    config = SimulationConfig(
        code=summary.code,
        tx_model=summary.tx_model,
        k=BENCH_SCALE.k,
        expansion_ratio=summary.expansion_ratio,
        tx_options=tx_options,
        label=summary.description,
    )
    return simulate_grid(
        config,
        BENCH_SCALE.p_values,
        BENCH_SCALE.q_values,
        runs=BENCH_RUNS,
        seed=BENCH_SEED,
    )


def check_against_paper(table_id: str, grid) -> list[str]:
    """Compare the measured grid to the paper's summary; return report lines."""
    summary = PAPER_TABLES[table_id]
    lines = [f"paper range: {summary.value_range[0]:.3f}..{summary.value_range[1]:.3f}; "
             f"measured range: {grid.min_inefficiency():.3f}..{grid.max_inefficiency():.3f}"]
    for (p, q), paper_value in sorted(summary.reference_points.items()):
        measured = grid.value_at(p, q)
        shown = "-" if not np.isfinite(measured) else f"{measured:.3f}"
        lines.append(f"  (p={p:.2f}, q={q:.2f}) paper {paper_value:.3f} vs measured {shown}")
    return lines


@pytest.mark.parametrize("table_id", sorted(PAPER_TABLES))
def bench_appendix_table(run_once, table_id):
    grid = run_once(run_table, table_id)
    summary = PAPER_TABLES[table_id]
    report_lines = [f"{table_id}: {summary.description}", ""]
    report_lines.append(format_grid_table(grid, title=summary.description))
    report_lines.append("")
    report_lines.extend(check_against_paper(table_id, grid))
    report = "\n".join(report_lines)
    print(report)
    results_path(f"{table_id}_report.txt").write_text(report, encoding="utf-8")

    # Shape checks: a decodable region exists, the p = 0 row behaves as in
    # the paper, and the level of the surface is in the right ballpark
    # (within ~0.15 of the paper's range despite the 10x smaller object).
    assert grid.coverage > 0.3
    low, high = summary.value_range
    assert grid.min_inefficiency() > low - 0.10
    assert grid.max_inefficiency() < high + 0.30
    if summary.tx_model in ("tx_model_2", "tx_model_5"):
        assert np.allclose(grid.mean_inefficiency[0], 1.0)
