"""Figure 11 / Tables 5-6 -- Tx_model_4: everything in random order.

Expected shape (paper, section 4.6): performance is almost independent of
the packet loss behaviour; RSE is the worst code (coupon collector across
blocks), LDGM Staircase is better and LDGM Triangle at least as good; and
the surfaces are flat across the decodable region.
"""

import numpy as np

from _shared import BENCH_RUNS, print_figure_report, run_figure_experiment


def bench_fig11_tx_model4(run_once):
    grids = run_once(run_figure_experiment, "fig11", runs=BENCH_RUNS)
    print_figure_report("fig11", grids)

    def pick(code, ratio):
        return next(
            grid for label, grid in grids.items() if code in label and str(ratio) in label
        )

    for ratio in (1.5, 2.5):
        staircase = pick("staircase", ratio)
        triangle = pick("triangle", ratio)
        rse = pick("rse", ratio)
        # Flat surfaces: the spread over the decodable region is small for
        # the LDGM codes (paper: ~0.02 at k = 20000; a little wider here).
        for grid in (staircase, triangle):
            spread = grid.max_inefficiency() - grid.min_inefficiency()
            assert spread < 0.12
        # LDGM Triangle is at least on par with Staircase on average.
        assert triangle.mean_over_decodable() <= staircase.mean_over_decodable() + 0.02
        # Note: at k = 2000 the RSE object spans ~20 blocks only, so the
        # coupon-collector penalty (which makes RSE clearly worst at
        # k = 20000) is muted; EXPERIMENTS.md discusses this.
        assert np.isfinite(rse.mean_over_decodable())
