"""Figure 14 -- Rx_model_1: receive a few source packets, then parity randomly.

Expected shape (paper, section 5.1): the inefficiency ratio of LDGM
Staircase (ratio 2.5) as a function of the number of received source
packets has a sweet spot at a few percent of k (400-1000 packets for
k = 20000); receiving fewer or many more source packets degrades it.
"""

import numpy as np

from _shared import BENCH_SCALE, BENCH_SEED, results_path
from repro.core.config import SimulationConfig
from repro.core.sweep import sweep_parameter

#: Number of received source packets, as a fraction of k, swept by the bench.
SOURCE_FRACTIONS = (0.0005, 0.001, 0.005, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50)


def run_sweep():
    k = BENCH_SCALE.k

    def make_config(num_source: float) -> SimulationConfig:
        return SimulationConfig(
            code="ldgm-staircase",
            tx_model="rx_model_1",
            k=k,
            expansion_ratio=2.5,
            tx_options={"num_source_packets": max(1, int(round(num_source)))},
        )

    counts = [max(1, int(round(fraction * k))) for fraction in SOURCE_FRACTIONS]
    return sweep_parameter(
        make_config,
        counts,
        parameter_name="received source packets",
        p=0.0,
        q=1.0,
        runs=6,
        seed=BENCH_SEED,
        label="Rx_model_1, LDGM Staircase, ratio 2.5",
    )


def bench_fig14_rx_model1(run_once):
    series = run_once(run_sweep)
    lines = ["Figure 14: Rx_model_1 with LDGM Staircase (ratio 2.5)", ""]
    lines.append(f"{'received source packets':>26s}  {'share of k':>10s}  {'mean inefficiency':>18s}")
    for count, value in zip(series.parameter_values, series.mean_inefficiency):
        lines.append(f"{int(count):>26d}  {count / BENCH_SCALE.k:>9.2%}  {value:>18.4f}")
    best = series.best_parameter()
    lines.append("")
    lines.append(f"best value at {int(best)} received source packets "
                 f"({best / BENCH_SCALE.k:.1%} of k; paper: 2-5% of k)")
    report = "\n".join(lines)
    print(report)
    results_path("fig14_report.txt").write_text(report, encoding="utf-8")

    assert np.all(series.failure_counts == 0)
    # The optimum sits at a small but non-trivial share of k, and both the
    # "1 packet" end and the "half of k" end are worse than the optimum.
    values = series.mean_inefficiency
    best_index = int(np.argmin(values))
    assert 0 < best_index < len(SOURCE_FRACTIONS) - 1
    assert values[best_index] < values[0]
    assert values[best_index] < values[-1]
