"""Figure 7 -- performance without FEC but 2 repetitions of every packet.

The paper's motivation for FEC: sending every packet twice (in random
order) only works on a loss-free channel, and even then the receiver has to
wait for almost the whole transmission (inefficiency close to 2).
"""

import numpy as np

from _shared import BENCH_RUNS, print_figure_report, run_figure_experiment


def bench_fig07_no_fec(run_once):
    grids = run_once(run_figure_experiment, "fig07", runs=BENCH_RUNS)
    print_figure_report("fig07", grids)
    grid = next(iter(grids.values()))

    # Shape checks from the paper: only the p = 0 row decodes, and there the
    # inefficiency ratio approaches the number of repetitions (2).
    assert grid.decodable_mask[0].all()
    assert not grid.decodable_mask[1:].any()
    assert np.nanmin(grid.mean_inefficiency[0]) > 1.7
