"""Benchmark-suite configuration.

The benchmarks are one-shot reproductions of the paper's tables and figures;
each simulation sweep is expensive, so every benchmark is run exactly once
(``rounds=1``) via the helper fixture below instead of pytest-benchmark's
default calibration loop.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
