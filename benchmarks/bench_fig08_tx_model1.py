"""Figure 8 -- Tx_model_1: source packets sequentially, then parity sequentially.

Expected shape (paper, section 4.3): with any loss the inefficiency ratio
stays close to ``n_received / k`` (the receiver waits for the end of the
transmission), RSE covers a smaller decodable area than the LDGM codes, and
with p = 0 every code is ideal (ratio 1.0).
"""

import numpy as np

from _shared import BENCH_RUNS, print_figure_report, run_figure_experiment


def bench_fig08_tx_model1(run_once):
    grids = run_once(run_figure_experiment, "fig08", runs=BENCH_RUNS)
    print_figure_report("fig08", grids)

    for label, grid in grids.items():
        # p = 0 row: no loss, source packets arrive first, ideal efficiency.
        assert np.allclose(grid.mean_inefficiency[0], 1.0), label
        # Where decoding succeeds with loss, the inefficiency tracks the
        # total number of received packets (receiver waits for the end).
        lossy = grid.decodable_mask.copy()
        lossy[0] = False
        if lossy.any():
            tracked = grid.mean_inefficiency[lossy] >= 0.75 * grid.mean_received_ratio[lossy]
            assert tracked.mean() > 0.8, label

    # RSE's decodable area is no larger than LDGM Triangle's (same ratio).
    for ratio in (1.5, 2.5):
        rse = next(g for label, g in grids.items() if "rse" in label and str(ratio) in label)
        ldgm = next(g for label, g in grids.items() if "triangle" in label and str(ratio) in label)
        assert rse.coverage <= ldgm.coverage + 1e-9
