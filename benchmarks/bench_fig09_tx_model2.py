"""Figure 9 / Tables 1-4 -- Tx_model_2: source sequentially, parity randomly.

Expected shape (paper, section 4.4): randomising the parity transmission
fixes Tx_model_1; the LDGM codes outperform RSE, LDGM Staircase is the best
at low loss rates while LDGM Triangle is more robust at higher/bursty loss
rates.
"""

import numpy as np

from _shared import BENCH_RUNS, grid_value, print_figure_report, run_figure_experiment


def bench_fig09_tx_model2(run_once):
    grids = run_once(run_figure_experiment, "fig09", runs=BENCH_RUNS)
    print_figure_report("fig09", grids)

    def pick(code, ratio):
        return next(
            grid for label, grid in grids.items() if code in label and str(ratio) in label
        )

    for ratio in (1.5, 2.5):
        rse = pick("rse", ratio)
        staircase = pick("staircase", ratio)
        triangle = pick("triangle", ratio)
        # Perfect channel: every code is ideal.
        for grid in (rse, staircase, triangle):
            assert np.allclose(grid.mean_inefficiency[0], 1.0)
        # LDGM codes beat RSE on the moderate-loss region (paper's headline).
        point = (0.05, 0.7)
        if np.isfinite(grid_value(rse, *point)):
            assert min(grid_value(staircase, *point), grid_value(triangle, *point)) <= grid_value(
                rse, *point
            ) + 0.02
        # Staircase is the better code at low loss with random parity.
        low_loss = (0.01, 1.0)
        assert grid_value(staircase, *low_loss) <= grid_value(triangle, *low_loss) + 0.02
